"""IVF-style centroid routing: sub-linear shard selection for queries.

The norm-bound prefilter of :mod:`repro.serving.service` is a 1-D
projection of sketch geometry: it can only rule a shard out when the
query's *norm* is far from every stored norm.  This module generalises
it to the full sketch space.  At compaction time the store's rows are
clustered (seeded, deterministic k-means over the *decoded* rows — the
exact values queries scan) and rewritten cluster-by-cluster, so shard
boundaries align with cluster boundaries; each shard then gets a
*centroid* ``c_i`` and a *covering radius* ``r_i`` — the maximum
distance from any of its rows to ``c_i``.  Because the paper's sketch
map approximately preserves Euclidean geometry (Stausholm, PODS 2021),
rows that are close in input space land in the same sketch-space ball,
so the balls are tight and routing is selective.

Two modes consume the ``(c_i, r_i)`` table:

* **Exact routing** (the default whenever routing data is present and
  :attr:`~repro.serving.execution.ExecutionPolicy.routing` is on).  By
  the reverse triangle inequality every row ``v`` of shard ``i``
  satisfies ``||q - v|| >= ||q - c_i|| - r_i``, so the shard's whole
  distance block is bounded below by ``max(0, ||q - c_i|| - r_i)^2 -
  correction`` — the same shape of bound the norm prefilter feeds to
  :class:`~repro.serving.service._RunningBest`, and it is applied the
  same way: a shard is skipped only when the bound *proves* it cannot
  contribute a result.  Routed results are therefore **bit-identical**
  to unrouted ones; routing is pure work-skipping, never approximation.
  The bound is widened by the same slack recipe as the prefilter
  (relative slack dominating float64 rounding, plus the float32
  accumulation envelope ``4 * gamma * ||q|| * (||c_i|| + r_i)`` from
  :mod:`repro.theory.quantisation` on quantised stores — ``||c_i|| +
  r_i`` bounds every row norm in the ball, standing in for the
  prefilter's ``sqrt(hi)``).

* **Approximate routing** (:class:`RoutingSpec` with ``nprobe=N`` on a
  :class:`~repro.serving.queries.TopKQuery` /
  :class:`~repro.serving.queries.RadiusQuery`).  Only the ``N`` shards
  with the nearest centroids are visited (per query row; a batch visits
  the union).  This is the classical IVF trade: recall is no longer
  guaranteed, but on clustered data a small ``N`` preserves nearly all
  of it — the routed-search benchmark gates recall@10 >= 0.95 — while
  rows scanned drop by ~``n_shards / N``.  The recall contract is the
  same utility-vs-cost framing the paper's related work applies to
  approximate private release baselines: the *privacy* guarantee is
  untouched (routing is post-processing of already-released sketches;
  no noise is added or removed), only *utility* is traded.

Staleness: a :class:`ShardRouting` is only valid for the exact shard
layout it was built from.  The store invalidates it on append and
delete, and every query revalidates against its frozen snapshot (row
count and per-shard sizes must match), so a stale table can never
misroute — it simply stops being used until the next rebuild
(:meth:`repro.serving.maintenance.StoreMaintainer.rebuild_routing`).
"""

from __future__ import annotations

import dataclasses
import numbers

import numpy as np

#: Default number of rows sampled to train the k-means centroids; the
#: full store is still assigned and covered exactly (radii come from
#: every row), sampling only affects where the centroids land.
DEFAULT_TRAIN_SAMPLE = 32768

#: Lloyd iterations after k-means++ seeding.  Routing correctness never
#: depends on convergence quality — radii cover whatever assignment the
#: iterations settle on — so a fixed budget keeps builds deterministic
#: and bounded.
_KMEANS_ITERS = 25

#: Same relative safety slack as the norm prefilter
#: (``repro.serving.service._PREFILTER_REL_SLACK``): double-precision
#: rounding in a distance block is ~1e-16 relative, a 1e-9 margin
#: dominates it by seven orders of magnitude.  Kept as a local constant
#: because the service imports this module, not the other way around.
_ROUTING_REL_SLACK = 1e-9


@dataclasses.dataclass(frozen=True)
class RoutingSpec:
    """Per-query routing directive, carried by top-k and radius queries.

    ``nprobe=None`` (the default) requests *exact* routing: the
    centroid-ball bound may skip provably hopeless shards, results are
    bit-identical to an unrouted scan.  ``nprobe=N`` requests the
    approximate IVF mode: visit only the ``N`` nearest-centroid shards
    per query row.  Executing any spec against a store with no routing
    table raises ``ValueError`` for ``nprobe`` mode (the contract
    cannot be honoured) and silently degrades to an unrouted scan for
    exact mode (which is always correct).
    """

    nprobe: int | None = None

    def __post_init__(self) -> None:
        if self.nprobe is None:
            return
        if isinstance(self.nprobe, bool) or not isinstance(
            self.nprobe, numbers.Integral
        ):
            raise ValueError(f"nprobe must be an integer or None, got {self.nprobe!r}")
        object.__setattr__(self, "nprobe", int(self.nprobe))
        if self.nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {self.nprobe}")


def kmeans_centroids(
    rows: np.ndarray, n_clusters: int, seed: int = 0
) -> np.ndarray:
    """Deterministic k-means centroids over ``rows`` (float64).

    k-means++ seeding followed by a fixed budget of Lloyd iterations,
    all randomness drawn from ``np.random.default_rng(seed)`` — the
    same rows and seed always produce the same centroids, so compaction
    is reproducible.  Empty clusters are re-seeded to the point
    farthest from its centroid (deterministically).  ``n_clusters`` is
    clamped to the number of rows.
    """
    rows = np.asarray(rows, dtype=np.float64)
    n = rows.shape[0]
    if n == 0:
        raise ValueError("cannot cluster zero rows")
    k = min(int(n_clusters), n)
    rng = np.random.default_rng(seed)
    # k-means++: first centre uniform, then proportional to sq distance
    centroids = np.empty((k, rows.shape[1]), dtype=np.float64)
    centroids[0] = rows[int(rng.integers(n))]
    closest = _sq_dists_to(rows, centroids[:1]).ravel()
    for j in range(1, k):
        total = float(closest.sum())
        if total <= 0.0:  # all rows coincide with a centre already
            centroids[j:] = centroids[0]
            break
        centroids[j] = rows[int(rng.choice(n, p=closest / total))]
        closest = np.minimum(closest, _sq_dists_to(rows, centroids[j : j + 1]).ravel())
    for _ in range(_KMEANS_ITERS):
        assign = assign_rows(rows, centroids)
        updated = centroids.copy()
        for j in range(k):
            members = assign == j
            if members.any():
                updated[j] = rows[members].mean(axis=0)
            else:
                # deterministic re-seed: the row currently worst-served
                worst = int(np.argmax(_sq_dists_to(rows, updated).min(axis=1)))
                updated[j] = rows[worst]
        if np.array_equal(updated, centroids):
            break
        centroids = updated
    return centroids


def _sq_dists_to(rows: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """``(n, K)`` squared distances, clipped at zero (float64 GEMM)."""
    sq_rows = np.einsum("ij,ij->i", rows, rows)
    sq_c = np.einsum("ij,ij->i", centroids, centroids)
    d = sq_rows[:, np.newaxis] + sq_c[np.newaxis, :] - 2.0 * (rows @ centroids.T)
    return np.maximum(d, 0.0)


def assign_rows(rows: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Index of each row's nearest centroid (ties to the lowest index)."""
    return np.argmin(_sq_dists_to(np.asarray(rows, dtype=np.float64), centroids), axis=1)


def inflate_radius(radius: float, centroid_norm: float) -> float:
    """The conservative margin a covering radius carries on disk.

    A relative slack larger than any rounding the distance computation
    can accumulate, so the ball *provably* contains every row — the
    exact-mode guarantee rests on this inflation plus the query-time
    slack.  Shared by the in-memory and the streaming (disk-to-disk)
    radius builders so both produce the same table.
    """
    return radius + _ROUTING_REL_SLACK * (radius + centroid_norm) + 1e-12


def covering_radius(rows: np.ndarray, centroid: np.ndarray) -> float:
    """Conservative max distance from any of ``rows`` to ``centroid``."""
    rows = np.asarray(rows, dtype=np.float64)
    if rows.shape[0] == 0:
        return 0.0
    diff = rows - centroid[np.newaxis, :]
    r = float(np.sqrt(np.max(np.einsum("ij,ij->i", diff, diff))))
    return inflate_radius(r, float(np.linalg.norm(centroid)))


@dataclasses.dataclass(frozen=True)
class ShardRouting:
    """The per-shard ``(centroid, radius)`` table of one shard layout.

    ``shard_sizes`` pins the exact physical layout the table was built
    from; :meth:`matches` revalidates against a frozen snapshot before
    every routed query, so a table can never outlive its layout.
    ``generation`` records the store generation at build time (surfaced
    by ``/healthz`` so operators can see whether routing is current).
    """

    centroids: np.ndarray  # (n_shards, output_dim) float64
    radii: np.ndarray  # (n_shards,) float64
    shard_sizes: tuple
    generation: int = 0
    n_clusters: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        centroids = np.ascontiguousarray(self.centroids, dtype=np.float64)
        radii = np.ascontiguousarray(self.radii, dtype=np.float64)
        if centroids.ndim != 2 or radii.shape != (centroids.shape[0],):
            raise ValueError(
                f"centroids {centroids.shape} and radii {radii.shape} disagree"
            )
        if len(self.shard_sizes) != centroids.shape[0]:
            raise ValueError(
                f"{len(self.shard_sizes)} shard sizes for "
                f"{centroids.shape[0]} centroids"
            )
        if radii.size and (not np.all(np.isfinite(radii)) or radii.min() < 0):
            raise ValueError("radii must be finite and non-negative")
        centroids.flags.writeable = False
        radii.flags.writeable = False
        object.__setattr__(self, "centroids", centroids)
        object.__setattr__(self, "radii", radii)
        object.__setattr__(self, "shard_sizes", tuple(int(s) for s in self.shard_sizes))

    @property
    def n_shards(self) -> int:
        return self.centroids.shape[0]

    @property
    def n_rows(self) -> int:
        return sum(self.shard_sizes)

    def matches(self, sizes) -> bool:
        """Whether this table describes exactly the shard layout ``sizes``.

        The query plane passes its *snapshot's* per-view sizes, so a
        concurrent append that grew a shard after the table was read can
        never be routed with stale geometry — the sizes no longer match
        and the query falls back to an unrouted scan.
        """
        return tuple(int(s) for s in sizes) == self.shard_sizes

    # -- query-time geometry -------------------------------------------------

    def centroid_sq_distances(
        self, rows: np.ndarray, sq_rows: np.ndarray
    ) -> np.ndarray:
        """``(n_queries, n_shards)`` squared query-to-centroid distances."""
        sq_c = np.einsum("ij,ij->i", self.centroids, self.centroids)
        d = (
            sq_rows[:, np.newaxis]
            + sq_c[np.newaxis, :]
            - 2.0 * (rows @ self.centroids.T)
        )
        return np.maximum(d, 0.0)

    def lower_bounds(
        self,
        rows: np.ndarray,
        sq_rows: np.ndarray,
        query_norms: np.ndarray,
        correction: float,
        gamma: float = 0.0,
    ) -> np.ndarray:
        """Conservative per-(query, shard) lower bounds on the estimates.

        The centroid-ball analogue of
        ``repro.serving.service._shard_lower_bounds``, with the same
        slack recipe: ``gap = max(0, ||q - c_i|| - r_i)`` bounds every
        raw squared distance in the shard from below, the correction is
        subtracted, and a relative slack (scaled by ``(||c_i|| +
        r_i)^2``, which bounds every row's squared norm in the ball —
        the stand-in for the prefilter's ``hi``) plus the float32
        accumulation term ``4 * gamma * ||q|| * (||c_i|| + r_i)``
        absorbs anything the scanning GEMM can round.  Comparing these
        bounds *strictly greater* against a threshold can only skip
        shards whose every entry genuinely exceeds it — routed exact
        results are identical to unrouted ones, ties included.
        """
        dist = np.sqrt(self.centroid_sq_distances(rows, sq_rows))
        reach = np.linalg.norm(self.centroids, axis=1) + self.radii
        gap = np.maximum(dist - self.radii[np.newaxis, :], 0.0)
        slack = (
            _ROUTING_REL_SLACK
            * (sq_rows[:, np.newaxis] + (reach * reach)[np.newaxis, :] + abs(correction))
            + 1e-12
        )
        if gamma:
            slack = slack + 4.0 * gamma * query_norms[:, np.newaxis] * reach[np.newaxis, :]
        return gap * gap - correction - slack

    def probe_shards(self, rows: np.ndarray, sq_rows: np.ndarray, nprobe: int) -> np.ndarray:
        """Sorted union of each query row's ``nprobe`` nearest shards."""
        n = min(int(nprobe), self.n_shards)
        if n == self.n_shards:
            return np.arange(self.n_shards, dtype=np.intp)
        sq_d = self.centroid_sq_distances(rows, sq_rows)
        nearest = np.argpartition(sq_d, n - 1, axis=1)[:, :n]
        return np.unique(nearest)

    # -- persistence ---------------------------------------------------------

    def to_payload(self) -> dict:
        """The JSON-ready dict the serialization layer writes to disk."""
        return {
            "n_shards": self.n_shards,
            "output_dim": int(self.centroids.shape[1]),
            "shard_sizes": list(self.shard_sizes),
            "generation": int(self.generation),
            "n_clusters": int(self.n_clusters),
            "seed": int(self.seed),
        }

    @classmethod
    def from_payload(
        cls, payload: dict, centroids: np.ndarray, radii: np.ndarray
    ) -> "ShardRouting":
        return cls(
            centroids=centroids,
            radii=radii,
            shard_sizes=tuple(payload["shard_sizes"]),
            generation=int(payload.get("generation", 0)),
            n_clusters=int(payload.get("n_clusters", 0)),
            seed=int(payload.get("seed", 0)),
        )


def build_shard_routing(
    shard_values,
    *,
    generation: int = 0,
    n_clusters: int = 0,
    seed: int = 0,
) -> ShardRouting:
    """A :class:`ShardRouting` over per-shard decoded row arrays.

    ``shard_values`` is one float64-convertible array per *physical*
    shard, in shard order — the exact values queries scan, so the balls
    bound what the distance kernel sees.  Works for any layout (the
    bounds are valid even without clustering; clustering just makes the
    radii small enough to be worth checking).
    """
    centroids, radii, sizes = [], [], []
    for values in shard_values:
        values = np.asarray(values, dtype=np.float64)
        if values.shape[0] == 0:
            raise ValueError("cannot build routing over an empty shard")
        centroid = values.mean(axis=0)
        centroids.append(centroid)
        radii.append(covering_radius(values, centroid))
        sizes.append(values.shape[0])
    return ShardRouting(
        centroids=np.asarray(centroids, dtype=np.float64),
        radii=np.asarray(radii, dtype=np.float64),
        shard_sizes=tuple(sizes),
        generation=generation,
        n_clusters=n_clusters,
        seed=seed,
    )


def default_cluster_count(n_rows: int, shard_capacity: int) -> int:
    """One cluster per (would-be) full shard — the routing default.

    Matching cluster count to shard capacity means a cluster typically
    fills about one shard, so the centroid table stays exactly one
    entry per shard and ``nprobe`` maps directly onto "shards visited".
    """
    return max(1, -(-n_rows // shard_capacity))
