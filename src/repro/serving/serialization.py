"""Versioned binary container for released sketch batches.

The serving layer persists :class:`~repro.core.sketch.SketchBatch`
payloads to disk, so unlike the wire-friendly format of
:meth:`SketchBatch.to_bytes` it needs a *versioned* container that can
detect corruption and evolve without breaking stored shards.

Format version 3 (the current writer) lays the values section out as a
raw, 64-byte-aligned segment in one of the
:mod:`repro.serving.storage` element types so a reader can
``np.memmap`` the rows straight out of the file without materialising
them::

    offset  size  field
    0       4     magic  b"RSKB"
    4       2     format version (3)
    6       4     header length H
    10      H     JSON header: batch metadata, typed labels, the values
                  byte length, the storage spec name and (for int8) its
                  quantisation scale, SHA-256 digests of metadata/values
    10+H    ...   zero padding up to the first 64-byte boundary
    A       ...   values: raw little-endian storage dtype, C row-major

where ``A = ceil((10 + H) / 64) * 64`` is derived from the header
length, so the offset needs no forward pointer.  Two digests cover the
two sections independently: ``meta_sha256`` (always verified, even on a
memory-mapped open) and ``values_sha256`` (verified on eager reads;
a memory-mapped open defers it, trading corruption detection for not
touching the data — see :func:`read_batch_info`).  The recorded
``sq_norm_bounds`` are computed from the *decoded* rows, so the
norm-bound prefilter over a quantised mapped shard bounds exactly the
values queries will scan.

Format version 2 (the PR-3 writer) is version 3 without the
``storage``/``scale`` header fields — always float64 values.  It is
still read, eagerly and memory-mapped, and still writable via
``batch_to_bytes(..., version=2)`` for compatibility tests.

Labels are stored with a **typed JSON encoding** (:func:`encode_label`):
``None``, booleans, integers, floats and strings survive as themselves,
tuples/lists/dicts survive recursively, and anything else degrades to
its ``str()`` with an explicit marker — so ``load(save(store))`` gives
back labels *equal to the originals*, where format 1 stringified
everything.  Non-finite float labels (``nan``/``inf``) carry an ``f8``
hex tag so the header stays strict RFC 8259 JSON; readers predating the
tag reject only stores containing such labels (with an unknown-encoding
error), which was judged better than bumping the container version and
breaking every older reader for an edge case.

Format version 1 (the PR-2 writer: JSON envelope around the verbatim
``SketchBatch.to_bytes`` blob, one SHA-256 over the whole payload) is
still read — both eagerly and via :func:`read_batch_info` — as the
migration path for existing stores; its labels come back as strings,
which is what that format recorded.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import io
import json
import math
import numbers
import os
import shutil
from pathlib import Path

import numpy as np

from repro.core.sketch import SketchBatch
from repro.dp.mechanisms import PrivacyGuarantee
from repro.serving.storage import StorageSpec

MAGIC = b"RSKB"
FORMAT_VERSION = 3
_V1 = 1
_V2 = 2

_PREFIX_LEN = len(MAGIC) + 2 + 4  # magic + version + header length
_ALIGNMENT = 64  # values segment starts on a 64-byte boundary


class SerializationError(ValueError):
    """Raised when a stored batch blob is malformed, truncated or corrupt."""


# -- typed label encoding ------------------------------------------------------

_LABEL_KEY = "__label__"


def encode_label(label) -> object:
    """Encode one label as a JSON value that preserves its Python type.

    JSON-native scalars (``None``, ``bool``, ``int``, ``float``, ``str``)
    pass through; numpy scalars (``np.int64`` from ``np.arange`` labels,
    ``np.float64``, ``np.bool_``) decode as their equal Python scalars;
    tuples, lists and dicts are wrapped recursively so the container
    kind survives; any other object degrades to ``str(label)`` with an
    explicit marker (the lossy case is visible, not silent).
    """
    if label is None or isinstance(label, str):
        return label
    if isinstance(label, (bool, np.bool_)):  # bools are Integral; catch first
        return bool(label)
    if isinstance(label, numbers.Integral):
        return int(label)
    if isinstance(label, numbers.Real):  # normalises np.float64 and friends
        value = float(label)
        if not math.isfinite(value):
            # bare NaN/Infinity tokens are not strict JSON; hex-tag them
            return {_LABEL_KEY: "f8", "value": value.hex()}
        return value
    if isinstance(label, tuple):
        return {_LABEL_KEY: "tuple", "items": [encode_label(x) for x in label]}
    if isinstance(label, list):
        return {_LABEL_KEY: "list", "items": [encode_label(x) for x in label]}
    if isinstance(label, dict):
        return {
            _LABEL_KEY: "dict",
            "items": [[encode_label(k), encode_label(v)] for k, v in label.items()],
        }
    return {_LABEL_KEY: "str", "value": str(label)}


def decode_label(encoded) -> object:
    """Inverse of :func:`encode_label`."""
    if not isinstance(encoded, dict):
        return encoded
    kind = encoded.get(_LABEL_KEY)
    if kind == "tuple":
        return tuple(decode_label(x) for x in encoded["items"])
    if kind == "list":
        return [decode_label(x) for x in encoded["items"]]
    if kind == "dict":
        return {decode_label(k): decode_label(v) for k, v in encoded["items"]}
    if kind == "str":
        return encoded["value"]
    if kind == "f8":
        return float.fromhex(encoded["value"])
    raise SerializationError(f"unknown label encoding {encoded!r}")


# -- version-2 writer ----------------------------------------------------------


def _values_offset(header_len: int) -> int:
    """First 64-byte boundary past the prefix + header."""
    end = _PREFIX_LEN + header_len
    return ((end + _ALIGNMENT - 1) // _ALIGNMENT) * _ALIGNMENT


def _meta_dict(batch: SketchBatch, values_nbytes: int, decoded: np.ndarray) -> dict:
    """The header metadata; norm bounds come from the *decoded* rows.

    ``decoded`` is what a reader will scan after decoding the values
    segment — for quantised storage that differs from ``batch.values``,
    and the recorded bounds must cover the scanned rows, not the
    originals, for the mapped prefilter to stay exact.
    """
    if decoded.shape[0]:
        rows = np.asarray(decoded, dtype=np.float64)
        norms = np.einsum("ij,ij->i", rows, rows)
        sq_norm_bounds = [float(norms.min()), float(norms.max())]
    else:
        sq_norm_bounds = None
    return {
        "n_rows": len(batch),
        "sq_norm_bounds": sq_norm_bounds,
        "input_dim": batch.input_dim,
        "output_dim": batch.output_dim,
        "perturbation": batch.perturbation,
        "noise_spec": batch.noise_spec,
        "noise_second_moment": batch.noise_second_moment,
        "epsilon": batch.guarantee.epsilon,
        "delta": batch.guarantee.delta,
        "config_digest": batch.config_digest,
        "labels": [encode_label(label) for label in batch.labels],
        "values_nbytes": values_nbytes,
    }


def _meta_digest(meta: dict) -> str:
    return hashlib.sha256(
        json.dumps(meta, sort_keys=True).encode("utf-8")
    ).hexdigest()


#: The on-disk element type of v1/v2 values segments: float64 pinned to
#: little-endian, so stores move between hosts of any byte order.
#: Version 3 uses the storage spec's (equally little-endian) dtype.
_VALUES_DTYPE = np.dtype("<f8")


def _assemble(version: int, header: dict, values: bytes) -> bytes:
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    offset = _values_offset(len(header_bytes))
    padding = b"\0" * (offset - _PREFIX_LEN - len(header_bytes))
    return (
        MAGIC
        + version.to_bytes(2, "big")
        + len(header_bytes).to_bytes(4, "big")
        + header_bytes
        + padding
        + values
    )


def _to_bytes_v3(
    batch: SketchBatch,
    storage,
    encoded: np.ndarray | None,
    scale: float | None,
) -> bytes:
    """The current writer: values in the storage spec's element type.

    With ``encoded`` given (the store's save path), those exact storage
    codes are written verbatim — the round trip is bit-identical — and
    ``batch.values`` must already be the *decoded* rows they scan as.
    Without it, the rows are encoded here (quantised storage picks a
    fresh scale from the batch's peak magnitude).
    """
    spec = StorageSpec.parse(storage)
    if encoded is None:
        if spec.quantised and scale is None:
            peak = float(np.max(np.abs(batch.values))) if len(batch) else 0.0
            if not np.isfinite(peak):
                raise ValueError("int8 storage requires finite sketch values")
            scale = spec.int8_step(peak)
        encoded = spec.encode(batch.values, scale)
        decoded = spec.decode(encoded, scale)
    else:
        decoded = np.asarray(batch.values)
    values = np.ascontiguousarray(encoded, dtype=spec.dtype).tobytes()
    meta = _meta_dict(batch, len(values), decoded)
    meta["storage"] = spec.name
    meta["scale"] = scale
    header = dict(
        meta,
        meta_sha256=_meta_digest(meta),
        values_sha256=hashlib.sha256(values).hexdigest(),
    )
    return _assemble(FORMAT_VERSION, header, values)


def _to_bytes_v2(batch: SketchBatch) -> bytes:
    values = np.ascontiguousarray(batch.values, dtype=_VALUES_DTYPE).tobytes()
    meta = _meta_dict(batch, len(values), np.asarray(batch.values))
    header = dict(
        meta,
        meta_sha256=_meta_digest(meta),
        values_sha256=hashlib.sha256(values).hexdigest(),
    )
    return _assemble(_V2, header, values)


def _to_bytes_v1(batch: SketchBatch) -> bytes:
    payload = batch.to_bytes()
    header = {
        "payload_bytes": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    return (
        MAGIC
        + _V1.to_bytes(2, "big")
        + len(header_bytes).to_bytes(4, "big")
        + header_bytes
        + payload
    )


def batch_to_bytes(
    batch: SketchBatch,
    *,
    version: int = FORMAT_VERSION,
    storage="f8",
    encoded: np.ndarray | None = None,
    scale: float | None = None,
) -> bytes:
    """Serialize a batch into the versioned binary container.

    ``version=3`` (default) preserves label types, aligns the values
    segment for memory mapping, and stores the values in the
    :class:`~repro.serving.storage.StorageSpec` named by ``storage``
    (``encoded``/``scale`` let a store write its exact shard codes, see
    :func:`_to_bytes_v3`).  ``version=2`` reproduces the PR-3 header
    (always float64) and ``version=1`` the legacy envelope (labels
    stringified) for compatibility tests; neither accepts a non-default
    storage.
    """
    if version == FORMAT_VERSION:
        return _to_bytes_v3(batch, storage, encoded, scale)
    if StorageSpec.parse(storage).name != "f8" or encoded is not None:
        raise ValueError(f"format version {version} stores float64 values only")
    if version == _V2:
        return _to_bytes_v2(batch)
    if version == _V1:
        return _to_bytes_v1(batch)
    raise ValueError(f"cannot write format version {version}")


# -- parsing -------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class BatchInfo:
    """Everything about a stored batch except the values themselves.

    Produced by :func:`read_batch_info` from the container header alone
    — the values section is *not* read, which is what makes lazy /
    memory-mapped shard loading possible.  ``meta`` is a zero-row
    :class:`SketchBatch` carrying the shared metadata; ``labels`` are
    fully decoded; ``values_offset`` / ``values_nbytes`` locate the raw
    float64 segment for :func:`map_values`.
    """

    path: str | os.PathLike | None
    version: int
    n_rows: int
    values_offset: int
    values_nbytes: int
    labels: tuple
    meta: SketchBatch
    #: ``(min, max)`` of the *decoded* rows' squared norms, recorded at
    #: write time (formats 2/3, ``None`` for format 1) — lets the
    #: norm-bound prefilter rule a mapped shard out without reading it.
    sq_norm_bounds: tuple[float, float] | None = None
    #: Storage spec name of the values segment ("f8" for formats 1/2).
    storage: str = "f8"
    #: int8 quantisation step (``None`` for the float specs).
    scale: float | None = None
    #: Recorded digest of the values segment (``None`` for format 1,
    #: whose single digest covers the whole payload).
    values_sha256: str | None = None

    @property
    def output_dim(self) -> int:
        return self.meta.output_dim

    @property
    def storage_spec(self) -> StorageSpec:
        return StorageSpec.parse(self.storage)


def _read_exact(stream, n: int, what: str) -> bytes:
    data = stream.read(n)
    if len(data) != n:
        raise SerializationError(f"blob truncated inside the {what}")
    return data


def _parse_prefix(stream) -> tuple[int, dict]:
    """Read magic/version/header; return ``(version, header_dict)``."""
    prefix = stream.read(_PREFIX_LEN)
    if len(prefix) < _PREFIX_LEN:
        raise SerializationError(
            f"blob of {len(prefix)} bytes is shorter than the {_PREFIX_LEN}-byte prefix"
        )
    if prefix[:4] != MAGIC:
        raise SerializationError(f"bad magic {prefix[:4]!r}, expected {MAGIC!r}")
    version = int.from_bytes(prefix[4:6], "big")
    if version not in (_V1, _V2, FORMAT_VERSION):
        raise SerializationError(
            f"unsupported format version {version} "
            f"(this build reads {_V1} through {FORMAT_VERSION})"
        )
    header_len = int.from_bytes(prefix[6:10], "big")
    header_bytes = _read_exact(stream, header_len, "header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"header is not valid JSON: {exc}") from exc
    return version, header


_META_TEMPLATE_FIELDS_V2 = (
    "n_rows",
    "sq_norm_bounds",
    "input_dim",
    "output_dim",
    "perturbation",
    "noise_spec",
    "noise_second_moment",
    "epsilon",
    "delta",
    "config_digest",
    "labels",
    "values_nbytes",
)

_META_TEMPLATE_FIELDS_V3 = _META_TEMPLATE_FIELDS_V2 + ("storage", "scale")


def _meta_from_header(header: dict) -> SketchBatch:
    """A zero-row metadata carrier from a parsed v1-payload/v2 header."""
    return SketchBatch(
        values=np.empty((0, header["output_dim"])),
        input_dim=header["input_dim"],
        output_dim=header["output_dim"],
        perturbation=header["perturbation"],
        noise_spec=header["noise_spec"],
        noise_second_moment=header["noise_second_moment"],
        guarantee=PrivacyGuarantee(header["epsilon"], header["delta"]),
        config_digest=header["config_digest"],
    )


def _parse_v23_header(version: int, header: dict, header_len: int) -> BatchInfo:
    fields = (
        _META_TEMPLATE_FIELDS_V3 if version == FORMAT_VERSION else _META_TEMPLATE_FIELDS_V2
    )
    try:
        meta = {field: header[field] for field in fields}
        meta_digest = header["meta_sha256"]
        values_digest = header["values_sha256"]
    except KeyError as exc:
        raise SerializationError(f"header is missing required field {exc}") from exc
    if _meta_digest(meta) != meta_digest:
        raise SerializationError(
            "metadata digest mismatch: stored batch header is corrupt"
        )
    try:
        spec = StorageSpec.parse(meta.get("storage", "f8"))
    except ValueError as exc:
        raise SerializationError(str(exc)) from exc
    scale = meta.get("scale")
    if spec.quantised and scale is None:
        raise SerializationError("int8 values segment recorded without a scale")
    bounds = meta["sq_norm_bounds"]
    info = BatchInfo(
        path=None,
        version=version,
        n_rows=int(meta["n_rows"]),
        values_offset=_values_offset(header_len),
        values_nbytes=int(meta["values_nbytes"]),
        labels=tuple(decode_label(label) for label in meta["labels"]),
        meta=_meta_from_header(meta),
        sq_norm_bounds=None if bounds is None else (float(bounds[0]), float(bounds[1])),
        storage=spec.name,
        scale=None if scale is None else float(scale),
        values_sha256=values_digest,
    )
    expected = info.n_rows * info.meta.output_dim * spec.itemsize
    if info.values_nbytes != expected:
        raise SerializationError(
            f"header claims {info.values_nbytes} value bytes for "
            f"{info.n_rows} x {info.meta.output_dim} {spec.name} rows "
            f"(expected {expected})"
        )
    if info.labels and len(info.labels) != info.n_rows:
        # the eager path would trip SketchBatch's own validation; the
        # header-only path must reject the same inconsistency itself
        raise SerializationError(
            f"header carries {len(info.labels)} labels for {info.n_rows} rows"
        )
    return info


def _from_bytes_v23(stream, version: int, header: dict, header_len: int) -> SketchBatch:
    info = _parse_v23_header(version, header, header_len)
    _read_exact(stream, info.values_offset - _PREFIX_LEN - header_len, "padding")
    values_bytes = stream.read()
    if len(values_bytes) != info.values_nbytes:
        raise SerializationError(
            f"payload has {len(values_bytes)} bytes, header says {info.values_nbytes}"
        )
    digest = hashlib.sha256(values_bytes).hexdigest()
    if digest != info.values_sha256:
        raise SerializationError(
            "payload digest mismatch: stored batch is corrupt "
            f"(expected {info.values_sha256}, got {digest})"
        )
    spec = info.storage_spec
    raw = np.frombuffer(values_bytes, dtype=spec.dtype).reshape(
        info.n_rows, info.meta.output_dim
    )
    values = spec.decode(raw, info.scale).astype(np.float64, copy=True)
    return dataclasses.replace(info.meta, values=values, labels=info.labels)


def _from_bytes_v1(stream, header: dict) -> SketchBatch:
    payload = stream.read()
    try:
        expected_bytes = int(header["payload_bytes"])
        expected_digest = header["payload_sha256"]
    except KeyError as exc:
        raise SerializationError(f"header is missing required field {exc}") from exc
    if len(payload) != expected_bytes:
        raise SerializationError(
            f"payload has {len(payload)} bytes, header says {expected_bytes}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != expected_digest:
        raise SerializationError(
            "payload digest mismatch: stored batch is corrupt "
            f"(expected {expected_digest}, got {digest})"
        )
    try:
        return SketchBatch.from_bytes(payload)
    except ValueError as exc:  # digest passed but the writer produced junk
        raise SerializationError(f"payload is not a valid batch: {exc}") from exc


def batch_from_bytes(blob: bytes) -> SketchBatch:
    """Inverse of :func:`batch_to_bytes`, validating every layer.

    Reads both format versions.  Raises :class:`SerializationError` for
    a bad magic, an unsupported format version, a truncated header or
    payload, a payload whose size disagrees with the header, or a
    digest that does not match the one recorded at write time.
    """
    stream = io.BytesIO(blob)
    version, header = _parse_prefix(stream)
    header_len = int.from_bytes(blob[6:10], "big")
    if version in (_V2, FORMAT_VERSION):
        return _from_bytes_v23(stream, version, header, header_len)
    return _from_bytes_v1(stream, header)


def _scan_v1_payload_header(stream) -> tuple[dict, int]:
    """Parse the JSON first line of a v1 payload; return ``(header, line_len)``.

    Reads in bounded chunks until the newline separating the metadata
    from the raw values, so label-heavy shards do not force a full read.
    """
    chunks = []
    total = 0
    while True:
        chunk = stream.read(65536)
        if not chunk:
            raise SerializationError("v1 payload has no metadata/values separator")
        newline = chunk.find(b"\n")
        if newline >= 0:
            chunks.append(chunk[:newline])
            total += newline
            break
        chunks.append(chunk)
        total += len(chunk)
    try:
        return json.loads(b"".join(chunks).decode("utf-8")), total
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"v1 payload header is not valid JSON: {exc}") from exc


def read_batch_info(path: str | os.PathLike) -> BatchInfo:
    """Parse a stored batch's header without reading its values section.

    Works for both format versions.  The values digest is **not**
    verified (that would require reading the values); the v2 metadata
    digest is.  Use :func:`map_values` on the result to get the rows as
    a read-only memory map, or :func:`read_batch` for a fully verified
    eager load.
    """
    with open(path, "rb") as stream:
        version, header = _parse_prefix(stream)
        if version in (_V2, FORMAT_VERSION):
            # the true header length is the file position past the prefix
            header_len = stream.tell() - _PREFIX_LEN
            info = _parse_v23_header(version, header, header_len)
            return dataclasses.replace(info, path=os.fspath(path))
        payload_start = stream.tell()
        payload_header, line_len = _scan_v1_payload_header(stream)
        try:
            n_rows = int(payload_header["n_rows"])
            meta = _meta_from_header(payload_header)
            labels = tuple(payload_header.get("labels", ()))
        except KeyError as exc:
            raise SerializationError(
                f"v1 payload header is missing required field {exc}"
            ) from exc
        return BatchInfo(
            path=os.fspath(path),
            version=_V1,
            n_rows=n_rows,
            values_offset=payload_start + line_len + 1,
            values_nbytes=n_rows * meta.output_dim * 8,
            labels=labels,
            meta=meta,
        )


def map_values(info: BatchInfo) -> np.ndarray:
    """The raw values segment of a stored batch as a read-only ``np.memmap``.

    The rows are mapped straight out of the file in the *storage* dtype
    — nothing is read until pages are touched, and the OS can evict
    them under memory pressure, which is what lets stores larger than
    RAM serve queries.  Quantised segments map as their codes; decode
    with ``info.storage_spec.decode(..., info.scale)`` to get scan
    values.  Corruption in the values section is *not* detected on this
    path (the digest is only checked by eager reads).
    """
    if info.path is None:
        raise ValueError("this BatchInfo was parsed from bytes, not a file")
    shape = (info.n_rows, info.meta.output_dim)
    if info.n_rows == 0:
        return np.empty(shape, dtype=info.storage_spec.dtype)
    end = info.values_offset + info.values_nbytes
    if os.path.getsize(info.path) < end:
        raise SerializationError(
            f"{info.path} is truncated: values section ends at byte {end}"
        )
    dtype = np.float64 if info.version == _V1 else info.storage_spec.dtype
    return np.memmap(
        info.path, dtype=dtype, mode="r", offset=info.values_offset, shape=shape
    )


def read_batch_raw(path: str | os.PathLike) -> tuple[BatchInfo, np.ndarray]:
    """Eagerly read a stored batch's *raw* storage values, digest-verified.

    The store's eager load path: unlike :func:`read_batch` it hands
    back the storage codes exactly as written (no decode, no float64
    widening), so a quantised store reloads its shards bit-identically
    instead of round-tripping through full precision.  The values
    digest is verified (format 1 verifies via its whole-payload digest).
    """
    info = read_batch_info(path)
    if info.version == _V1:
        return info, np.asarray(read_batch(path).values)
    with open(path, "rb") as stream:
        stream.seek(info.values_offset)
        values_bytes = _read_exact(stream, info.values_nbytes, "values section")
    digest = hashlib.sha256(values_bytes).hexdigest()
    if digest != info.values_sha256:
        raise SerializationError(
            "payload digest mismatch: stored batch is corrupt "
            f"(expected {info.values_sha256}, got {digest})"
        )
    raw = np.frombuffer(values_bytes, dtype=info.storage_spec.dtype)
    return info, raw.reshape(info.n_rows, info.meta.output_dim)


def write_batch(
    path: str | os.PathLike,
    batch: SketchBatch,
    *,
    version: int = FORMAT_VERSION,
    storage="f8",
    encoded: np.ndarray | None = None,
    scale: float | None = None,
) -> None:
    """Write a batch to ``path`` in the versioned binary format."""
    with open(path, "wb") as handle:
        handle.write(
            batch_to_bytes(
                batch, version=version, storage=storage, encoded=encoded, scale=scale
            )
        )


def read_batch(path: str | os.PathLike) -> SketchBatch:
    """Read (eagerly, with full digest verification) a stored batch."""
    with open(path, "rb") as handle:
        return batch_from_bytes(handle.read())


# -- streaming (disk-to-disk maintenance) --------------------------------------

#: Default rows per streamed block: 8192 rows of a k=256 f8 sketch is
#: 16 MiB — big enough to amortise syscalls and BLAS/hashing setup,
#: small enough that maintenance peak RSS is shard-size independent.
DEFAULT_BLOCK_ROWS = 8192


def iter_batch_rows(info: BatchInfo, block_rows: int = DEFAULT_BLOCK_ROWS, *,
                    verify: bool = True):
    """Stream a stored batch's raw storage codes in bounded row blocks.

    Yields C-contiguous ``(<= block_rows, output_dim)`` arrays in the
    *storage* dtype (no decode, no float64 widening), read with plain
    buffered I/O rather than ``mmap`` so peak RSS is genuinely bounded
    by one block — the foundation the store's disk-to-disk
    ``compact``/``merge`` path is built on.  The recorded values digest
    accumulates across blocks and is verified once the stream is
    exhausted (``verify=False`` skips it); a partially consumed
    generator verifies nothing.  Callers that write the blocks
    somewhere permanent must therefore finish the stream *before*
    publishing the result — the maintenance layer streams into a
    staging directory precisely so a corrupt source aborts the whole
    rewrite instead of publishing half of it.

    Format-1 blobs stream as float64 rows but carry one digest over the
    whole envelope, which a block reader cannot check incrementally —
    use :func:`read_batch` when v1 corruption detection matters.
    """
    if info.path is None:
        raise ValueError("this BatchInfo was parsed from bytes, not a file")
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    dtype = _VALUES_DTYPE if info.version == _V1 else info.storage_spec.dtype
    row_nbytes = info.meta.output_dim * dtype.itemsize
    digest = (
        hashlib.sha256() if verify and info.values_sha256 is not None else None
    )
    with open(info.path, "rb") as stream:
        stream.seek(info.values_offset)
        remaining = info.n_rows
        while remaining:
            take = min(block_rows, remaining)
            data = _read_exact(stream, take * row_nbytes, "values section")
            if digest is not None:
                digest.update(data)
            yield np.frombuffer(data, dtype=dtype).reshape(
                take, info.meta.output_dim
            )
            remaining -= take
    if digest is not None and digest.hexdigest() != info.values_sha256:
        raise SerializationError(
            "payload digest mismatch: stored batch is corrupt "
            f"(expected {info.values_sha256}, got {digest.hexdigest()})"
        )


class StreamingBatchWriter:
    """Write a format-3 container incrementally, one row block at a time.

    The v3 header *precedes* the values segment and records its SHA-256
    digest, row count and decoded norm bounds — none of which a
    streaming writer knows up front.  Blocks therefore stream into a
    temporary sibling file (``<path>.values-tmp``) while the digest,
    row count and norm bounds accumulate incrementally; :meth:`commit`
    then writes the final container (prefix, header, alignment padding)
    and splices the temp file in with a bounded-buffer copy.  Peak
    memory is O(one block), never O(shard), and the committed file is
    **byte-identical** to :func:`write_batch` given the same content —
    partitioned mins/maxes and a chunked SHA-256 equal their one-shot
    counterparts exactly.

    ``template`` is a zero-row :class:`SketchBatch` carrying the shared
    metadata.  :meth:`append` takes raw storage *codes* already encoded
    for ``storage``/``scale`` (an int8 writer needs its scale fixed at
    construction: per-shard scales are immutable once rows are
    published, so re-encoding decides scales *before* opening a
    writer).  Labels ride along per block; they accumulate in memory,
    which is fine — labels are header metadata, small next to the
    values, and the store's positional-elision rule passes ``()``
    anyway.  Use as a context manager: an exception aborts and removes
    the temp and any partial output file.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        template: SketchBatch,
        *,
        storage="f8",
        scale: float | None = None,
    ) -> None:
        self._spec = StorageSpec.parse(storage)
        if self._spec.quantised and scale is None:
            raise ValueError(
                "int8 streaming writes need their quantisation scale fixed "
                "up front (per-shard scales are immutable once published)"
            )
        self._path = os.fspath(path)
        self._tmp_path = self._path + ".values-tmp"
        self._template = template
        self._scale = scale
        self._tmp = open(self._tmp_path, "wb")
        self._digest = hashlib.sha256()
        self._labels: list = []
        self._min_sq = np.inf
        self._max_sq = -np.inf
        self.n_rows = 0
        self.nbytes = 0
        self._committed = False

    def append(self, codes: np.ndarray, labels=()) -> None:
        """Stream one block of raw storage codes (plus its labels)."""
        codes = np.ascontiguousarray(codes, dtype=self._spec.dtype)
        if codes.ndim != 2 or codes.shape[1] != self._template.output_dim:
            raise ValueError(
                f"block of shape {codes.shape} does not hold "
                f"output_dim={self._template.output_dim} rows"
            )
        if labels and len(labels) != codes.shape[0]:
            raise ValueError(
                f"got {len(labels)} labels for a {codes.shape[0]}-row block"
            )
        data = codes.tobytes()
        self._digest.update(data)
        self._tmp.write(data)
        decoded = np.asarray(self._spec.decode(codes, self._scale), dtype=np.float64)
        if decoded.shape[0]:
            norms = np.einsum("ij,ij->i", decoded, decoded)
            self._min_sq = min(self._min_sq, float(norms.min()))
            self._max_sq = max(self._max_sq, float(norms.max()))
        self.n_rows += codes.shape[0]
        self.nbytes += len(data)
        self._labels.extend(labels)

    def commit(self) -> None:
        """Assemble the final container; the writer is spent afterwards."""
        if self._committed:
            raise ValueError(f"{self._path} was already committed")
        self._tmp.close()
        template = self._template
        meta = {
            "n_rows": self.n_rows,
            "sq_norm_bounds": (
                None if self.n_rows == 0 else [self._min_sq, self._max_sq]
            ),
            "input_dim": template.input_dim,
            "output_dim": template.output_dim,
            "perturbation": template.perturbation,
            "noise_spec": template.noise_spec,
            "noise_second_moment": template.noise_second_moment,
            "epsilon": template.guarantee.epsilon,
            "delta": template.guarantee.delta,
            "config_digest": template.config_digest,
            "labels": [encode_label(label) for label in self._labels],
            "values_nbytes": self.nbytes,
            "storage": self._spec.name,
            "scale": self._scale,
        }
        header = dict(
            meta,
            meta_sha256=_meta_digest(meta),
            values_sha256=self._digest.hexdigest(),
        )
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        offset = _values_offset(len(header_bytes))
        with open(self._path, "wb") as out:
            out.write(MAGIC)
            out.write(FORMAT_VERSION.to_bytes(2, "big"))
            out.write(len(header_bytes).to_bytes(4, "big"))
            out.write(header_bytes)
            out.write(b"\0" * (offset - _PREFIX_LEN - len(header_bytes)))
            with open(self._tmp_path, "rb") as values:
                shutil.copyfileobj(values, out, 1 << 20)
        os.remove(self._tmp_path)
        self._committed = True

    def abort(self) -> None:
        """Remove the temp file and any partial output (idempotent)."""
        if not self._tmp.closed:
            self._tmp.close()
        if not self._committed:
            for leftover in (self._tmp_path, self._path):
                try:
                    os.remove(leftover)
                except FileNotFoundError:
                    pass

    def __enter__(self) -> "StreamingBatchWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None or not self._committed:
            self.abort()


def write_batch_streaming(
    path: str | os.PathLike,
    blocks,
    template: SketchBatch,
    *,
    storage="f8",
    scale: float | None = None,
    labels=(),
) -> None:
    """Write an iterable of raw code blocks as one v3 batch container.

    The convenience wrapper over :class:`StreamingBatchWriter`:
    ``labels`` (when given) is the *full* label tuple, sliced per block
    as the stream advances, and must match the total row count.  Byte
    identical to :func:`write_batch` for the same content, with peak
    memory bounded by one block.
    """
    with StreamingBatchWriter(
        path, template, storage=storage, scale=scale
    ) as writer:
        offset = 0
        for block in blocks:
            block = np.asarray(block)
            writer.append(
                block, labels[offset : offset + block.shape[0]] if labels else ()
            )
            offset += block.shape[0]
        if labels and offset != len(labels):
            raise ValueError(f"got {len(labels)} labels for {offset} streamed rows")
        writer.commit()


# -- routing blobs -------------------------------------------------------------

ROUTING_FORMAT_VERSION = 1
ROUTING_BLOB_NAME = "routing.json"


def write_routing_blob(path: str | os.PathLike, payload: dict,
                       centroids: np.ndarray, radii: np.ndarray) -> str:
    """Write a shard-routing table next to its shards; returns its digest.

    The blob is JSON — ``payload`` (the layout facts a
    :class:`~repro.serving.routing.ShardRouting` pins) plus the
    centroid matrix and radius vector as base64 little-endian float64 —
    so it stays greppable and versioned like the manifest.  The
    returned sha256 of the file bytes goes into the manifest's
    ``routing`` entry, which is how a swapped or truncated blob is
    caught at load time.
    """
    centroids = np.ascontiguousarray(centroids, dtype="<f8")
    radii = np.ascontiguousarray(radii, dtype="<f8")
    blob = json.dumps(
        {
            "routing_format": ROUTING_FORMAT_VERSION,
            **payload,
            "centroids": base64.b64encode(centroids.tobytes()).decode("ascii"),
            "radii": base64.b64encode(radii.tobytes()).decode("ascii"),
        },
        indent=2,
        sort_keys=True,
    ).encode("utf-8")
    Path(path).write_bytes(blob)
    return hashlib.sha256(blob).hexdigest()


def read_routing_blob(
    path: str | os.PathLike, expected_sha256: str | None = None
) -> tuple[dict, np.ndarray, np.ndarray]:
    """Read a routing blob back as ``(payload, centroids, radii)``.

    Verifies the manifest-pinned digest (when given) over the raw file
    bytes before parsing anything, then rebuilds the float64 arrays at
    the payload's recorded shape.  Raises :class:`SerializationError`
    for a missing file, digest mismatch, junk JSON or shape mismatch —
    a manifest that references routing promises it loads.
    """
    blob_path = Path(path)
    try:
        blob = blob_path.read_bytes()
    except FileNotFoundError:
        raise SerializationError(
            f"manifest references a routing blob but none exists at {blob_path}"
        ) from None
    if expected_sha256 is not None:
        digest = hashlib.sha256(blob).hexdigest()
        if digest != expected_sha256:
            raise SerializationError(
                f"routing blob at {blob_path} does not match its manifest "
                f"digest (expected {expected_sha256}, got {digest})"
            )
    try:
        payload = json.loads(blob)
    except json.JSONDecodeError as exc:
        raise SerializationError(
            f"routing blob at {blob_path} is not valid JSON: {exc}"
        ) from exc
    if payload.get("routing_format") != ROUTING_FORMAT_VERSION:
        raise SerializationError(
            f"unsupported routing blob format {payload.get('routing_format')!r}"
        )
    try:
        n_shards = int(payload["n_shards"])
        dim = int(payload["output_dim"])
        centroids = np.frombuffer(
            base64.b64decode(payload["centroids"]), dtype="<f8"
        ).reshape(n_shards, dim)
        radii = np.frombuffer(base64.b64decode(payload["radii"]), dtype="<f8")
    except (KeyError, ValueError) as exc:
        raise SerializationError(
            f"routing blob at {blob_path} is malformed: {exc}"
        ) from exc
    if radii.shape != (n_shards,):
        raise SerializationError(
            f"routing blob at {blob_path} carries {radii.shape[0]} radii "
            f"for {n_shards} shards"
        )
    return payload, centroids.astype(np.float64), radii.astype(np.float64)
