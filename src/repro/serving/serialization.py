"""Versioned binary container for released sketch batches.

The serving layer persists :class:`~repro.core.sketch.SketchBatch`
payloads to disk, so unlike the wire-friendly format of
:meth:`SketchBatch.to_bytes` it needs a *versioned* container that can
detect corruption and evolve without breaking stored shards.

Layout (all integers big-endian)::

    offset  size  field
    0       4     magic  b"RSKB"
    4       2     format version (currently 1)
    6       4     header length H
    10      H     JSON header: payload byte length + payload SHA-256
    10+H    ...   payload: the ``SketchBatch.to_bytes`` blob, verbatim

The payload *is* the batch's own wire format — the metadata schema has
exactly one owner (:class:`SketchBatch`); this module only adds the
envelope: a magic, a version, and a SHA-256 over the whole payload
(metadata and values alike), so a flipped bit anywhere is rejected at
load time (``digest mismatch``) instead of silently corrupting distance
estimates.  Round-trips are bit-exact: the values travel as their raw
IEEE-754 bytes.

Labels survive as strings (the :meth:`SketchBatch.to_bytes` contract);
arbitrary label objects are stringified on the way out.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.core.sketch import SketchBatch

MAGIC = b"RSKB"
FORMAT_VERSION = 1

_PREFIX_LEN = len(MAGIC) + 2 + 4  # magic + version + header length


class SerializationError(ValueError):
    """Raised when a stored batch blob is malformed, truncated or corrupt."""


def batch_to_bytes(batch: SketchBatch) -> bytes:
    """Serialize a batch into the versioned binary container."""
    payload = batch.to_bytes()
    header = {
        "payload_bytes": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    return (
        MAGIC
        + FORMAT_VERSION.to_bytes(2, "big")
        + len(header_bytes).to_bytes(4, "big")
        + header_bytes
        + payload
    )


def batch_from_bytes(blob: bytes) -> SketchBatch:
    """Inverse of :func:`batch_to_bytes`, validating every layer.

    Raises :class:`SerializationError` for a bad magic, an unsupported
    format version, a truncated header or payload, a payload whose size
    disagrees with the header, or a payload whose SHA-256 digest does
    not match the one recorded at write time.
    """
    if len(blob) < _PREFIX_LEN:
        raise SerializationError(
            f"blob of {len(blob)} bytes is shorter than the {_PREFIX_LEN}-byte prefix"
        )
    if blob[:4] != MAGIC:
        raise SerializationError(f"bad magic {blob[:4]!r}, expected {MAGIC!r}")
    version = int.from_bytes(blob[4:6], "big")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {version} (this build reads {FORMAT_VERSION})"
        )
    header_len = int.from_bytes(blob[6:10], "big")
    if len(blob) < _PREFIX_LEN + header_len:
        raise SerializationError("blob truncated inside the header")
    try:
        header = json.loads(blob[_PREFIX_LEN : _PREFIX_LEN + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"header is not valid JSON: {exc}") from exc

    payload = blob[_PREFIX_LEN + header_len :]
    try:
        expected_bytes = int(header["payload_bytes"])
        expected_digest = header["payload_sha256"]
    except KeyError as exc:
        raise SerializationError(f"header is missing required field {exc}") from exc
    if len(payload) != expected_bytes:
        raise SerializationError(
            f"payload has {len(payload)} bytes, header says {expected_bytes}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != expected_digest:
        raise SerializationError(
            "payload digest mismatch: stored batch is corrupt "
            f"(expected {expected_digest}, got {digest})"
        )
    try:
        return SketchBatch.from_bytes(payload)
    except ValueError as exc:  # digest passed but the writer produced junk
        raise SerializationError(f"payload is not a valid batch: {exc}") from exc


def write_batch(path: str | os.PathLike, batch: SketchBatch) -> None:
    """Write a batch to ``path`` in the versioned binary format."""
    with open(path, "wb") as handle:
        handle.write(batch_to_bytes(batch))


def read_batch(path: str | os.PathLike) -> SketchBatch:
    """Read a batch written by :func:`write_batch`."""
    with open(path, "rb") as handle:
        return batch_from_bytes(handle.read())
