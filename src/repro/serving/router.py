"""Scatter-gather router: one ``execute()`` over several store backends.

:class:`RouterService` implements the same ``execute(query)`` /
``execute_many(queries)`` protocol as
:class:`~repro.serving.service.DistanceService` and
:class:`~repro.serving.client.DistanceClient`, over an **ordered
sequence of backends** that partition one logical store: backend ``i``
holds a contiguous block of rows, in order, exactly as if the blocks
were concatenated into a single store.  A query is scattered to every
backend concurrently and the per-backend partials are merged with the
same shard-ordered reduction the local engine uses —
:func:`~repro.serving.service.stable_smallest_k` over the partials in
backend order — so the merged answer equals a single-store run on the
concatenated rows.  The backends are the shards, promoted across the
network.

Backends are anything speaking the protocol: a
:class:`~repro.serving.client.DistanceClient` per store server (the
scale-out topology), local :class:`DistanceService` instances (useful
in tests), or even another ``RouterService`` (two-level fan-out).  A
router can itself be served by a
:class:`~repro.serving.server.SketchQueryServer`, giving the full
topology ``client -> router server -> N store servers``; a backend
that cannot be reached surfaces as ``ConnectionError`` (HTTP 502
through a router server), distinct from a bad query's ``ValueError``.

Merge rules per query kind (mirroring the local per-shard reduction):

* **top-k** — each backend returns its local top ``k``; the merged top
  ``k`` is selected from the union with the stable tie-break of
  :func:`stable_smallest_k`, where "position" is backend order — the
  same order a single store's global row index gives.  One caveat,
  inherited from the wire format: ranking payloads carry estimates
  *clamped at zero* (see :mod:`repro.serving.queries`), so distinct
  negative raw estimates from different backends compare equal at the
  router and merge in backend order — locally their raw values would
  order them.  This can permute entries whose *reported* estimates are
  all exactly ``0.0`` (tiny true distances only); every other case is
  bit-identical.
* **radius** — hits concatenated in backend order, stably re-sorted by
  estimate: equal estimates keep backend (= global row) order, exactly
  the local ``lexsort((index, estimate))`` rule.  Same clamped-zero
  caveat as top-k.
* **cross / norms** — per-backend blocks concatenated along the stored
  axis in backend order; bit-identical always (matrix payloads ride
  the wire as raw float64 and are never clamped).
* **pairwise** — answered when every requested row lives in a single
  backend (indices are translated and forwarded); a pairwise query
  *spanning* backends is rejected with ``ValueError``, because
  cross-backend pairs need the stored values themselves, which no
  backend exposes.  Span the store with :class:`CrossQuery` instead.

Merged :class:`~repro.serving.queries.QueryStats` sum the counters
(shards visited/pruned, rows scanned/total) across backends;
``elapsed_seconds`` is the *maximum* backend time, since the scatter
runs concurrently.
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.serving.execution import run_ordered
from repro.serving.queries import (
    QUERY_TYPES,
    CrossQuery,
    NormsQuery,
    PairwiseQuery,
    QueryResult,
    QueryStats,
    RadiusQuery,
    TopKQuery,
)
from repro.serving.service import stable_smallest_k


def _merge_stats(parts: list[QueryStats]) -> QueryStats:
    return QueryStats(
        shards_visited=sum(s.shards_visited for s in parts),
        shards_pruned=sum(s.shards_pruned for s in parts),
        shards_routed=sum(s.shards_routed for s in parts),
        rows_scanned=sum(s.rows_scanned for s in parts),
        rows_total=sum(s.rows_total for s in parts),
        elapsed_seconds=max((s.elapsed_seconds for s in parts), default=0.0),
    )


def _merge_ranking(partials: list[list], k: int | None) -> list:
    """Merge per-backend ``(label, estimate)`` lists, backend order = row order.

    Concatenating the partials in backend order and stably selecting by
    estimate reproduces the local ``lexsort((global_index, estimate))``
    tie-break: each partial is already in (estimate, local index) order,
    and backend order extends local index order to global index order.
    """
    labels: list = []
    estimates: list = []
    for partial in partials:
        for label, estimate in partial:
            labels.append(label)
            estimates.append(estimate)
    order = stable_smallest_k(
        np.asarray(estimates, dtype=np.float64),
        len(estimates) if k is None else k,
    )
    return [(labels[i], estimates[i]) for i in order]


class RouterService:
    """Scatter queries across ordered backends and merge the partials.

    Parameters
    ----------
    backends:
        Ordered sequence of ``execute()``-protocol objects, each
        holding one contiguous block of the logical store's rows (the
        concatenation, in this order, is the store the router serves).
        All backends must hold sketches of one configuration — an
        incompatible query raises the same ``ValueError`` everywhere.
    close_backends:
        When true, :meth:`close` also closes every backend (use when
        the router owns its clients).
    """

    def __init__(self, backends, *, close_backends: bool = False) -> None:
        self.backends = tuple(backends)
        if not self.backends:
            raise ValueError("a RouterService needs at least one backend")
        self.close_backends = close_backends
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def __len__(self) -> int:
        return sum(len(backend) for backend in self.backends)

    def health(self) -> dict:
        """Aggregate liveness: total rows and per-backend row counts."""
        rows = [len(backend) for backend in self.backends]
        return {
            "status": "ok",
            "rows": sum(rows),
            "backends": len(self.backends),
            "backend_rows": rows,
        }

    def describe(self) -> dict:
        return {
            "backends": [
                getattr(backend, "base_url", type(backend).__name__)
                for backend in self.backends
            ],
            "rows": len(self),
        }

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        if self.close_backends:
            for backend in self.backends:
                backend.close()

    def __enter__(self) -> "RouterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- scatter -------------------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor | None:
        if len(self.backends) == 1:
            return None
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=len(self.backends),
                    thread_name_prefix="repro-router",
                )
            return self._pool

    def _scatter(self, query) -> list[QueryResult]:
        """Execute ``query`` on every backend, results in backend order.

        A backend exception (incompatible query, unreachable server)
        propagates unchanged — the same class local execution raises.
        """
        return run_ordered(
            lambda backend: backend.execute(query),
            list(self.backends),
            executor=self._executor(),
        )

    # -- the execute() protocol ----------------------------------------------

    def execute(self, query) -> QueryResult:
        """Answer one typed query across every backend; merged payload."""
        if type(query) not in QUERY_TYPES:
            raise TypeError(
                f"execute() takes a typed query "
                f"(one of {[t.__name__ for t in QUERY_TYPES]}), "
                f"got {type(query).__name__}"
            )
        if isinstance(query, PairwiseQuery):
            return self._execute_pairwise(query)
        parts = self._scatter(query)
        stats = _merge_stats([p.stats for p in parts])
        if isinstance(query, TopKQuery):
            payload = [
                _merge_ranking([p.payload[q] for p in parts], query.k)
                for q in range(len(parts[0].payload))
            ]
        elif isinstance(query, RadiusQuery):
            payload = _merge_ranking([p.payload for p in parts], None)
        elif isinstance(query, CrossQuery):
            payload = np.concatenate([p.payload for p in parts], axis=1)
        else:  # NormsQuery
            payload = np.concatenate([p.payload for p in parts])
        return QueryResult(payload=payload, stats=stats)

    def execute_many(self, queries) -> list[QueryResult]:
        """Execute a sequence of typed queries, results in input order."""
        return [self.execute(query) for query in queries]

    # -- pairwise: a gather, not a scatter -----------------------------------

    def _execute_pairwise(self, query: PairwiseQuery) -> QueryResult:
        sizes = [len(backend) for backend in self.backends]
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        total = int(offsets[-1])
        indices = np.asarray(query.indices, dtype=np.int64)
        if indices.size and (indices.min() < -total or indices.max() >= total):
            raise IndexError(f"indices out of range for store of {total} rows")
        if indices.size:
            indices = indices % total
        owners = (
            np.searchsorted(offsets, indices, side="right") - 1
            if indices.size
            else np.empty(0, dtype=np.int64)
        )
        unique_owners = np.unique(owners)
        if unique_owners.size > 1:
            raise ValueError(
                "a pairwise query spanning multiple router backends is not "
                "supported (cross-backend pairs need the stored sketch values, "
                "which backends do not expose) — keep the indices within one "
                "backend or use CrossQuery with released query sketches"
            )
        owner = int(unique_owners[0]) if unique_owners.size else 0
        local = PairwiseQuery(
            indices=tuple(int(i - offsets[owner]) for i in indices)
        )
        result = self.backends[owner].execute(local)
        # untouched backends' rows count toward the logical total, like
        # the local engine's untouched shards
        stats = dataclasses.replace(result.stats, rows_total=total)
        return QueryResult(payload=result.payload, stats=stats)
