"""Append-only sharded storage for published sketch batches.

:class:`ShardedSketchStore` is the serving layer's data plane: released
rows accumulate into fixed-capacity *shards*, each a preallocated
``(capacity, k)`` buffer that fills in place.  Appending ``n`` rows
therefore copies exactly ``n`` rows — never the whole store, unlike a
flat index that re-``concatenate``s every chunk per insert.  Buffers
grow geometrically (doubling) up to the shard capacity, so small stores
stay small while the amortised cost per appended row is O(1).

The buffer element type is a :class:`~repro.serving.storage.StorageSpec`
chosen at construction (``storage="f8" | "f4" | "f2" | "int8"``, default
from ``REPRO_STORE_DTYPE``): full-precision float64, half-size float32,
quarter-size float16, or eighth-size scalar-quantised int8 with one
scale per shard.  Quantisation happens once, at append time; queries
scan the *decoded* rows (float32 for the low-precision specs — ``f4``
serves its stored bytes zero-copy, ``f2``/``int8`` decode lazily into a
cached float32 scan copy) through the unchanged :class:`ShardView`
interface, so the whole query
plane runs identically, trading a documented error envelope
(:mod:`repro.theory.quantisation`) for 2–8x smaller buffers and files.
An int8 shard never rescales published rows: a chunk that would clip
seals the shard and opens a fresh one with its own scale, keeping
snapshots immutable.

Every shard caches the squared norms of its filled rows (maintained
incrementally at append time) plus their min/max, which the query
plane's norm-bound prefilter uses to skip shards that provably cannot
contain a hit.

Stores persist as a directory — a ``manifest.json`` plus one versioned
binary blob per shard (:mod:`repro.serving.serialization`) — and load
back bit-exactly, **including label types** (integer labels come back
as integers).  :meth:`ShardedSketchStore.save` is atomic: it writes
into a temporary sibling directory and swaps it into place, so a crash
mid-save never corrupts an existing store and re-saving a smaller store
over a larger one leaves no stale shard files behind.

``load(path, mmap=True)`` attaches each shard as a lazy memory map
instead of reading it into RAM: nothing is touched until a query needs
the shard, whole shards the prefilter skips are never read, and pages
the OS maps in can be evicted again — stores larger than RAM stay
queryable.

Maintenance is LSM-style.  Published rows are immutable, so deletion is
*tombstoned*: :meth:`ShardedSketchStore.delete` marks rows by label,
tombstoned rows are skipped by every query and by :meth:`merge`, and
they are physically dropped (rows *and* labels) when :meth:`compact`
rewrites the shards.  **DP semantics of deletion** (documented once,
here): deleting a release never refunds privacy budget.  The noise was
sampled and the sketch *published* when the row was released — removing
it from this store afterwards is post-processing of an already-spent
budget, the same argument that makes result caching free
(:mod:`repro.serving.cache`), so the accountant's spend is deliberately
never decremented.  A tombstone is an availability control, not a
privacy rewind: anyone who saw the published sketch still holds it.

Every manifest carries a **generation** counter that maintenance bumps
each time it rewrites the shard layout.  The disk-to-disk path
(:func:`repro.serving.maintenance.compact_store`) streams generation
``N+1`` into a sibling ``gen-NNNNN`` directory in bounded row blocks
(:meth:`ShardView.iter_codes` — peak memory is O(block), not O(store))
and atomically replaces the manifest, so a long-running server can
watch the manifest and hot-swap to the new layout without a restart.

Concurrency contract (shared with :class:`~repro.serving.service.DistanceService`):
one writer at a time; any number of concurrent readers, each of which
sees a *consistent prefix* of the store as of its :meth:`snapshot`.
Rows and their cached norms are published before the shard's size, so a
snapshot never exposes partially written rows.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
from pathlib import Path

import numpy as np

from repro.core import estimators
from repro.core.sketch import PrivateSketch, SketchBatch
from repro.serving.routing import (
    DEFAULT_TRAIN_SAMPLE,
    ShardRouting,
    assign_rows,
    build_shard_routing,
    default_cluster_count,
    kmeans_centroids,
)
from repro.serving.serialization import (
    DEFAULT_BLOCK_ROWS,
    ROUTING_BLOB_NAME,
    BatchInfo,
    SerializationError,
    iter_batch_rows,
    map_values,
    read_batch_info,
    read_batch_raw,
    read_routing_blob,
    write_batch,
    write_routing_blob,
)
from repro.serving.storage import INT8_CODE_MAX, StorageSpec

#: Default rows per shard; 2^16 rows of a k=256 sketch is ~128 MiB.
DEFAULT_SHARD_CAPACITY = 65536

_MANIFEST_NAME = "manifest.json"
#: Version 2 adds the optional ``routing`` entry (centroid shard
#: routing); version-1 manifests — every pre-routing store — still load.
_MANIFEST_VERSION = 2
_SUPPORTED_MANIFEST_VERSIONS = (1, 2)
_SHARD_PATTERN = "shard-{:05d}.skb"


class _Shard:
    """One preallocated block of sketch rows plus its cached norms.

    The buffer holds rows in the store's storage dtype; ``scale`` is
    the int8 quantisation step (``None`` for the float specs), fixed by
    the first chunk the shard admits and never changed afterwards —
    published rows are immutable, so snapshots stay consistent.  Norms
    are always cached in float64, computed from the *decoded* rows (the
    exact values queries scan), so the prefilter bounds exactly what
    the distance kernel sees.
    """

    __slots__ = (
        "capacity",
        "size",
        "storage",
        "scale",
        "_buffer",
        "_decoded",
        "_sq_norms",
        "_min_sq",
        "_max_sq",
    )

    def __init__(
        self,
        capacity: int,
        output_dim: int,
        storage: StorageSpec,
        initial_rows: int = 0,
    ) -> None:
        self.capacity = capacity
        self.size = 0
        self.storage = storage
        self.scale: float | None = None
        allocate = min(capacity, max(initial_rows, 1))
        self._buffer = np.empty((allocate, output_dim), dtype=storage.dtype)
        self._decoded: np.ndarray | None = None  # f2/int8 scan cache
        self._sq_norms = np.empty(allocate, dtype=np.float64)
        self._min_sq = np.inf
        self._max_sq = -np.inf

    @property
    def free(self) -> int:
        return self.capacity - self.size

    def admit(self, rows: np.ndarray) -> int:
        """How many leading ``rows`` this shard will take (0 = sealed).

        Float specs admit up to :attr:`free` rows.  An int8 shard with
        rows already published additionally requires the chunk to fit
        its fixed scale — a chunk that would clip returns 0, telling the
        store to seal this shard and open a fresh one whose scale the
        chunk then sets.  A fresh shard always admits at least one row,
        so the store's fill loop always progresses.
        """
        take = min(self.free, rows.shape[0])
        if take and self.storage.quantised and self.scale is not None:
            peak = float(np.max(np.abs(rows[:take])))
            if peak > INT8_CODE_MAX * self.scale:
                return 0
        return take

    def append(self, rows: np.ndarray) -> None:
        """Copy ``rows`` into the buffer, extending the norm caches.

        The size is published *last*, after the rows, their norms and
        the norm bounds — a concurrent reader that sees the new size
        therefore sees fully written rows and bounds covering them.
        """
        end = self.size + rows.shape[0]
        if end > self._buffer.shape[0]:  # grow geometrically within capacity
            new_rows = min(self.capacity, max(end, 2 * self._buffer.shape[0]))
            grown = np.empty((new_rows, self._buffer.shape[1]), dtype=self._buffer.dtype)
            grown[: self.size] = self._buffer[: self.size]
            norms = np.empty(new_rows, dtype=np.float64)
            norms[: self.size] = self._sq_norms[: self.size]
            self._buffer, self._sq_norms = grown, norms
        if self.storage.quantised and self.scale is None:
            peak = float(np.max(np.abs(rows))) if rows.size else 0.0
            if not np.isfinite(peak):
                raise ValueError("int8 storage requires finite sketch values")
            self.scale = StorageSpec.int8_step(peak)
        self._buffer[self.size : end] = (
            rows
            if self.storage.name == "f8"
            else self.storage.encode(rows, self.scale)
        )
        decoded = np.asarray(
            self.storage.decode(self._buffer[self.size : end], self.scale),
            dtype=np.float64,
        )
        chunk_norms = np.einsum("ij,ij->i", decoded, decoded)
        self._sq_norms[self.size : end] = chunk_norms
        self._min_sq = min(self._min_sq, float(chunk_norms.min()))
        self._max_sq = max(self._max_sq, float(chunk_norms.max()))
        self.size = end

    def adopt(self, raw: np.ndarray, scale: float | None) -> None:
        """Fill an empty shard with raw storage codes from a stored blob.

        The eager-load path: codes land in the buffer verbatim (no
        decode/re-encode round trip, so quantised reloads are
        bit-identical) and the norm caches are rebuilt from the decoded
        rows exactly as :meth:`append` would have.
        """
        end = raw.shape[0]
        self.scale = scale
        self._buffer[:end] = raw
        scan = self.storage.decode(self._buffer[:end], scale)
        if self.storage.name not in ("f8", "f4"):
            # a fresh f2/int8 decode: prime the scan cache right away
            scan.flags.writeable = False
            self._decoded = scan
        decoded = np.asarray(scan, dtype=np.float64)
        norms = np.einsum("ij,ij->i", decoded, decoded)
        self._sq_norms[:end] = norms
        if end:
            self._min_sq = float(norms.min())
            self._max_sq = float(norms.max())
        self.size = end

    @property
    def values(self) -> np.ndarray:
        """The filled rows, decoded to the scan dtype (read-only).

        ``f8``/``f4`` are zero-copy views of the buffer; ``f2``/``int8``
        decode into a cached float32 array so repeated queries do not
        re-convert the shard (the cache is keyed by its row count, so
        appends naturally invalidate it, and a stale reference handed
        to an earlier snapshot stays valid — rows are immutable).
        """
        view = self._buffer[: self.size]
        if self.storage.name in ("f8", "f4"):
            view.flags.writeable = False
            return view
        cached = self._decoded
        if cached is None or cached.shape[0] != self.size:
            cached = self.storage.decode(view, self.scale)
            cached.flags.writeable = False
            self._decoded = cached
        return cached

    @property
    def codes(self) -> np.ndarray:
        """The filled rows in raw storage form (read-only, no decode)."""
        view = self._buffer[: self.size]
        view.flags.writeable = False
        return view

    def iter_codes(self, block_rows: int = DEFAULT_BLOCK_ROWS):
        """The filled rows as bounded blocks of raw codes (zero copy)."""
        codes = self.codes
        for start in range(0, self.size, block_rows):
            yield codes[start : start + block_rows]

    @property
    def nbytes(self) -> int:
        """Bytes of stored values (filled rows only; norm and decode
        caches are excluded — this is the persisted/mapped footprint)."""
        return self.size * self._buffer.shape[1] * self.storage.itemsize

    @property
    def sq_norms(self) -> np.ndarray:
        """Cached ``||row||^2`` for every filled row (read-only view)."""
        view = self._sq_norms[: self.size]
        view.flags.writeable = False
        return view

    def norm_bounds(self) -> tuple[float, float]:
        """``(min, max)`` of the cached squared norms (infinite if empty)."""
        return self._min_sq, self._max_sq


class _MappedShard:
    """A shard whose rows live in a stored blob, mapped on first touch.

    Nothing is read at construction — the shard knows its row count,
    labels and squared-norm bounds from the blob header alone, so the
    norm-bound prefilter can rule the shard out without touching the
    file.  The first access to :attr:`values` memory-maps the raw
    float64 segment (read-only, pages loaded on demand by the OS); the
    first access to :attr:`sq_norms` streams one pass over the rows to
    build the norm cache (and, for format-1 blobs whose headers carry
    no bounds, fills :meth:`norm_bounds` as a side effect).  Mapped
    shards are sealed: :attr:`free` is always zero, so appends to the
    owning store land in fresh in-memory shards.
    """

    __slots__ = ("size", "_info", "_values", "_sq_norms", "_bounds")

    def __init__(self, info: BatchInfo) -> None:
        self.size = info.n_rows
        self._info = info
        self._values: np.ndarray | None = None
        self._sq_norms: np.ndarray | None = None
        self._bounds: tuple[float, float] | None = info.sq_norm_bounds

    @property
    def capacity(self) -> int:
        return self.size

    @property
    def free(self) -> int:
        return 0

    def admit(self, rows: np.ndarray) -> int:
        return 0  # mapped shards are sealed

    @property
    def storage(self) -> StorageSpec:
        return self._info.storage_spec

    @property
    def scale(self) -> float | None:
        return self._info.scale

    @property
    def nbytes(self) -> int:
        return self._info.values_nbytes

    @property
    def materialized(self) -> bool:
        """Whether the values have been mapped yet (for tests/metrics)."""
        return self._values is not None

    @property
    def values(self) -> np.ndarray:
        if self._values is None:
            # f8/f4 stay lazy memory maps (decode is a no-op); f2/int8
            # decode into a resident float32 array on first touch
            decoded = self.storage.decode(map_values(self._info), self.scale)
            decoded.flags.writeable = False
            self._values = decoded
        return self._values

    @property
    def codes(self) -> np.ndarray:
        """Raw storage values, memory-mapped (the save/compact path)."""
        return map_values(self._info)

    def iter_codes(self, block_rows: int = DEFAULT_BLOCK_ROWS):
        """Raw codes in bounded blocks via buffered reads, not ``mmap``.

        The maintenance path: plain block-sized reads keep peak memory
        *and address space* O(block) — a memory map would charge the
        whole file against ``RLIMIT_AS`` at map time — and the stored
        values digest is verified as the stream drains, so a corrupt
        shard aborts a rewrite instead of propagating into it.
        """
        yield from iter_batch_rows(self._info, block_rows)

    @property
    def sq_norms(self) -> np.ndarray:
        if self._sq_norms is None:
            values = np.asarray(self.values, dtype=np.float64)
            norms = np.einsum("ij,ij->i", values, values)
            if self._bounds is None:
                self._bounds = (
                    (float(norms.min()), float(norms.max()))
                    if norms.size
                    else (np.inf, -np.inf)
                )
            self._sq_norms = norms
        return self._sq_norms

    def norm_bounds(self) -> tuple[float, float]:
        if self._bounds is None:
            self.sq_norms  # format-1 fallback: one pass, cached thereafter
        return self._bounds


class ShardView:
    """An immutable view of one shard's filled prefix at snapshot time.

    ``start`` is the shard's global row offset; ``size`` the number of
    rows frozen by the snapshot.  Values and norms are exposed lazily so
    that a view of a memory-mapped shard the prefilter skips never
    touches the file.

    ``dead`` is the sorted array of *local* row indices tombstoned at
    snapshot time (``None`` when the shard has none — the overwhelmingly
    common case, kept allocation-free).  Values and norms still cover
    every physical row: scanning the full block and discarding dead
    entries afterwards is what keeps the surviving rows' estimates
    bit-identical before and after the tombstones are physically
    compacted away.
    """

    __slots__ = ("start", "size", "dead", "_shard")

    def __init__(self, start: int, size: int, shard, dead=None) -> None:
        self.start = start
        self.size = size
        self.dead = dead
        self._shard = shard

    @property
    def live_size(self) -> int:
        """Rows the snapshot actually serves (``size`` minus tombstones)."""
        return self.size if self.dead is None else self.size - len(self.dead)

    def live_local(self) -> np.ndarray:
        """Sorted *local* indices of the view's untombstoned rows."""
        if self.dead is None:
            return np.arange(self.size, dtype=np.intp)
        return np.delete(np.arange(self.size, dtype=np.intp), self.dead)

    @property
    def values(self) -> np.ndarray:
        return self._shard.values[: self.size]

    @property
    def codes(self) -> np.ndarray:
        """The view's rows in raw storage form (no decode; save path)."""
        return self._shard.codes[: self.size]

    def iter_codes(self, block_rows: int = DEFAULT_BLOCK_ROWS):
        """The view's raw codes in bounded row blocks (tombstones included).

        In-memory shards yield zero-copy buffer slices; memory-mapped
        shards stream block-sized buffered reads so a disk-to-disk
        rewrite never holds (or even maps) more than one block.  Blocks
        cover every physical row of the view — callers dropping
        tombstones filter against :attr:`dead` as they go.
        """
        remaining = self.size
        for block in self._shard.iter_codes(block_rows):
            if remaining <= 0:
                return
            take = min(block.shape[0], remaining)
            yield block[:take]
            remaining -= take

    @property
    def storage(self) -> StorageSpec:
        return self._shard.storage

    @property
    def scale(self) -> float | None:
        """The shard's int8 quantisation step (``None`` for float specs)."""
        return self._shard.scale

    @property
    def sq_norms(self) -> np.ndarray:
        return self._shard.sq_norms[: self.size]

    def norm_bounds(self) -> tuple[float, float]:
        """Conservative ``(min, max)`` squared-norm bounds for the view.

        The underlying shard may have grown past the snapshot; its
        bounds then cover a superset of these rows, which only widens
        the interval — still valid for prefiltering.
        """
        return self._shard.norm_bounds()


class ShardedSketchStore:
    """Append-only store of compatible released sketches, in shards.

    All rows must come from one public configuration (same config
    digest, same noise metadata); the first added release pins the
    metadata and later additions are checked against it with the same
    compatibility rule as the estimators.  ``expected_digest`` pins the
    configuration *before* any release arrives: a store constructed
    with it rejects the very first foreign batch instead of silently
    adopting its configuration — this is how
    :meth:`~repro.core.protocol.SketchingSession.serve` and
    :meth:`~repro.serving.service.DistanceService.from_batches` make
    every construction path fail fast on mismatched digests.

    Labels default to the row's global position, matching
    :class:`~repro.core.knn.PrivateNeighborIndex`, and survive a
    save/load round trip with their types intact.

    ``storage`` selects the shard element type
    (:class:`~repro.serving.storage.StorageSpec` or its name; the
    default comes from ``REPRO_STORE_DTYPE``, falling back to ``"f8"``).
    Low-precision stores quantise rows once at append time and serve
    the decoded values through the same :class:`ShardView` interface —
    the query plane runs unchanged, within the documented error
    envelope of :mod:`repro.theory.quantisation`.  Loading a saved
    store always uses the storage recorded in its manifest.
    """

    def __init__(
        self,
        shard_capacity: int = DEFAULT_SHARD_CAPACITY,
        expected_digest: str | None = None,
        storage: StorageSpec | str | None = None,
    ) -> None:
        if shard_capacity < 1:
            raise ValueError(f"shard_capacity must be >= 1, got {shard_capacity}")
        self.shard_capacity = int(shard_capacity)
        self.expected_digest = expected_digest
        self.storage = (
            StorageSpec.from_env() if storage is None else StorageSpec.parse(storage)
        )
        self._shards: list = []
        self._labels: list[object] = []
        self._template: SketchBatch | None = None  # zero-row metadata carrier
        self._tombstones: set[int] = set()  # global row indices, see delete()
        #: Bumped every time maintenance rewrites the shard layout;
        #: persisted in the manifest so servers can watch for swaps.
        self.generation: int = 0
        #: Centroid routing table for the *current* shard layout, or
        #: ``None``; appends and deletes invalidate it (see `routing`).
        self._routing: ShardRouting | None = None

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return sum(shard.size for shard in self._shards)

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def labels(self) -> list:
        return list(self._labels)

    def label(self, i: int):
        """The label of stored row ``i`` (no copy of the label list)."""
        return self._labels[i]

    @property
    def metadata(self) -> SketchBatch | None:
        """A zero-row batch carrying the store's shared metadata."""
        return self._template

    @property
    def routing(self) -> ShardRouting | None:
        """The centroid routing table, iff it matches the current layout.

        Returns ``None`` whenever routing is absent *or stale*: an
        append or delete since the last clustered
        :meth:`compact`/:func:`~repro.serving.maintenance.compact_store`
        invalidates the table (the per-shard balls no longer cover the
        rows), and this property is the one place that staleness rule
        is enforced — callers can never observe a table that does not
        describe exactly the shards they would scan.  Rebuild with
        ``compact(routing=True)`` or the maintenance layer's
        ``rebuild_routing``.
        """
        routing = self._routing
        if routing is None or self._tombstones:
            return None
        if not routing.matches(self.shard_sizes()):
            return None
        return routing

    @property
    def nbytes(self) -> int:
        """Bytes of stored values across all shards (filled rows only).

        Counts the storage representation — codes for quantised shards,
        the mapped file bytes for memory-mapped ones — not the norm
        caches or any decode-on-scan scratch.  This is the number that
        shrinks 2–8x when a store is compacted to a lower precision.
        """
        return sum(shard.nbytes for shard in self._shards)

    def describe(self) -> dict:
        """A JSON-friendly summary of the store's shape and storage.

        The same dictionary the HTTP frontend's ``GET /meta`` embeds,
        so operators see identical numbers locally and remotely.
        """
        return {
            "rows": len(self),
            "live_rows": self.live_row_count,
            "tombstones": len(self._tombstones),
            "generation": self.generation,
            "shards": self.n_shards,
            "shard_capacity": self.shard_capacity,
            "storage": self.storage.name,
            "nbytes": self.nbytes,
            "config_digest": (
                None if self._template is None else self._template.config_digest
            ),
            "routing": (
                None
                if self.routing is None
                else {
                    "shards": self.routing.n_shards,
                    "n_clusters": self.routing.n_clusters,
                    "generation": self.routing.generation,
                }
            ),
        }

    # -- appending -----------------------------------------------------------

    def add(self, sketch: PrivateSketch, label=None) -> None:
        """Append one published sketch (label defaults to its position)."""
        self._append(
            sketch,
            np.asarray(sketch.values, dtype=np.float64)[np.newaxis, :],
            [len(self._labels) if label is None else label],
        )

    def add_batch(self, batch: SketchBatch, labels=None) -> None:
        """Append every row of a published batch in one pass."""
        if labels is None:
            start = len(self._labels)
            labels = batch.labels or range(start, start + len(batch))
        elif len(labels) != len(batch):
            raise ValueError(f"got {len(labels)} labels for {len(batch)} rows")
        self._append(batch, np.asarray(batch.values, dtype=np.float64), list(labels))

    def _check_expected_digest(self, release) -> None:
        if (
            self.expected_digest is not None
            and release.config_digest != self.expected_digest
        ):
            raise ValueError(
                f"batch {release.config_digest} comes from a different "
                f"configuration than this store expects ({self.expected_digest})"
            )

    def _append(self, release, rows: np.ndarray, labels: list) -> None:
        if self._template is None:
            self._check_expected_digest(release)
            self._template = _as_template(release)
        else:
            estimators.check_compatible(self._template, release)
        # appended rows are not covered by any existing centroid ball:
        # drop the table *before* the rows land, so a concurrent reader
        # can never pair fresh rows with stale routing geometry (the
        # snapshot-sizes check in the service is the second line of
        # defence)
        self._routing = None
        self._labels.extend(labels)
        self._fill(rows)

    def _fill(self, rows: np.ndarray) -> None:
        """Copy ``rows`` into the tail shards, opening new ones as needed.

        The tail shard says how much of the chunk it will
        :meth:`~_Shard.admit`; zero means it is full — or an int8 shard
        whose fixed scale the chunk would clip — and a fresh shard opens
        (a fresh shard always admits, so the loop always progresses).
        """
        offset = 0
        while offset < rows.shape[0]:
            remaining = rows[offset:]
            take = self._shards[-1].admit(remaining) if self._shards else 0
            if take == 0:
                self._shards.append(
                    _Shard(
                        self.shard_capacity,
                        self._template.output_dim,
                        self.storage,
                        initial_rows=min(remaining.shape[0], self.shard_capacity),
                    )
                )
                take = self._shards[-1].admit(remaining)
            self._shards[-1].append(rows[offset : offset + take])
            offset += take

    # -- shard access --------------------------------------------------------

    def shard_values(self, i: int) -> np.ndarray:
        """Filled rows of shard ``i`` as a zero-copy read-only view."""
        return self._shards[i].values

    def shard_sq_norms(self, i: int) -> np.ndarray:
        """Cached squared norms of shard ``i`` (zero-copy, read-only)."""
        return self._shards[i].sq_norms

    def shard_sizes(self) -> list[int]:
        return [shard.size for shard in self._shards]

    @property
    def resident_shards(self) -> int:
        """Shards whose rows are resident in memory.

        In-memory shards always count; memory-mapped shards count only
        once a query has touched them.  ``resident_shards < n_shards``
        on an mmap-loaded store is the observable signature of lazy
        loading (and of the prefilter skipping shards outright).
        """
        return sum(
            1 for shard in self._shards if getattr(shard, "materialized", True)
        )

    def snapshot(self) -> list[ShardView]:
        """A consistent point-in-time view of the store, one entry per shard.

        Shard sizes are read once; rows appended afterwards are
        invisible to the snapshot, and rows inside it are fully written
        (sizes are published after their rows).  Queries built on a
        snapshot therefore see a consistent prefix of the store even
        while a writer keeps appending.
        """
        views = []
        start = 0
        dead_global = (
            np.fromiter(sorted(self._tombstones), dtype=np.intp)
            if self._tombstones
            else None
        )
        for shard in list(self._shards):
            size = shard.size
            if size:
                dead = None
                if dead_global is not None:
                    lo, hi = np.searchsorted(dead_global, (start, start + size))
                    if hi > lo:
                        dead = dead_global[lo:hi] - start
                # fully tombstoned views stay in the snapshot (persistence
                # relies on views tiling the physical layout); queries skip
                # them by their zero live_size without touching the shard
                views.append(ShardView(start, size, shard, dead=dead))
            start += size
        return views

    def shard_batch(self, i: int) -> SketchBatch:
        """Shard ``i`` as a :class:`SketchBatch` sharing the buffer."""
        start = sum(s.size for s in self._shards[:i])
        return _with_values(
            self._template,
            self._shards[i].values,
            tuple(self._labels[start : start + self._shards[i].size]),
        )

    def to_batch(self) -> SketchBatch:
        """Materialise the whole store as one batch (copies all rows)."""
        if self._template is None:
            raise ValueError("the store is empty")
        values = (
            np.concatenate([shard.values for shard in self._shards])
            if self._shards
            else np.empty((0, self._template.output_dim))
        )
        return _with_values(self._template, values, tuple(self._labels))

    # -- deletion ------------------------------------------------------------

    @property
    def tombstones(self) -> tuple[int, ...]:
        """Sorted global row indices marked deleted (empty when none)."""
        return tuple(sorted(self._tombstones))

    @property
    def live_row_count(self) -> int:
        """Rows queries actually serve: ``len(self)`` minus tombstones."""
        return len(self) - len(self._tombstones)

    def delete(self, labels) -> int:
        """Tombstone every row whose label is in ``labels``; count new ones.

        Rows are never mutated in place — published rows are immutable,
        and the snapshot contract depends on it — so deletion marks the
        rows' global indices as tombstones instead.  Tombstoned rows are
        skipped by every query and by :meth:`merge`, persist through
        :meth:`save`/:meth:`load` (the manifest records them), and are
        physically dropped, labels included, when :meth:`compact` or
        :func:`repro.serving.maintenance.compact_store` next rewrites
        the shards.  Deleting an already tombstoned row is a no-op; the
        return value counts rows *newly* tombstoned.  Unknown labels
        raise ``KeyError`` naming them — a deployment deleting a label
        that was never stored (or already compacted away) should find
        out, not silently succeed.

        Deletion does **not** refund privacy budget — see the module
        docstring for the DP semantics (post-processing of an
        already-spent budget; the accountant is never decremented).
        """
        if isinstance(labels, (str, bytes)) or not hasattr(labels, "__iter__"):
            labels = (labels,)  # one label, not an iterable of them
        wanted = set(labels)
        if not wanted:
            return 0
        matches: dict[object, list[int]] = {}
        for i, label in enumerate(self._labels):
            if label in wanted:
                matches.setdefault(label, []).append(i)
        missing = wanted - matches.keys()
        if missing:
            raise KeyError(
                f"labels not in this store: {sorted(missing, key=repr)!r}"
            )
        rows = {i for positions in matches.values() for i in positions}
        added = rows - self._tombstones
        self._tombstones |= added
        if added:
            # tombstoned shards still satisfy the centroid bounds (they
            # only shrink the live set), but the routing contract is
            # "fresh layout or nothing": mark the table stale so the
            # next compaction rebuilds it over the survivors
            self._routing = None
        return len(added)

    # -- maintenance ---------------------------------------------------------

    def compact(
        self,
        storage: StorageSpec | str | None = None,
        *,
        routing: bool | int | None = None,
        routing_seed: int = 0,
    ) -> "ShardedSketchStore":
        """Rewrite the shards so every shard except the last is full.

        Partial shards accumulate when batches straddle shard
        boundaries across mmap-loads and appends; compaction repacks
        the rows (in order — labels are unchanged) into capacity-sized
        shards.  Memory-mapped shards are materialised in the process:
        the compacted store lives in memory; :meth:`save` it to persist
        the compact layout.  Returns ``self`` for chaining.

        ``storage`` re-encodes the rows into a different
        :class:`~repro.serving.storage.StorageSpec` along the way — the
        build-full-precision-then-shrink workflow is
        ``store.compact(storage="f4").save(path)``.  Repacking float
        shards into the same spec is value-preserving (query results
        are unchanged); changing precision, or repacking ``int8``
        shards (whose per-shard scales are re-derived), re-rounds the
        rows within the documented envelope.

        Tombstoned rows are physically dropped here, labels included
        (their budget stays spent — see the module docstring), and the
        store's :attr:`generation` is bumped.  Rows stream through in
        bounded blocks — on an mmap-loaded store nothing larger than a
        block is ever read at once, so compacting a store bigger than
        RAM is fine.  For a disk-to-disk rewrite that never loads the
        store at all, use
        :func:`repro.serving.maintenance.compact_store`.

        ``routing`` builds a centroid routing table along the way
        (:mod:`repro.serving.routing`): ``True`` clusters the rows into
        :func:`~repro.serving.routing.default_cluster_count` k-means
        clusters (one per would-be-full shard), an integer picks the
        cluster count explicitly.  Rows are rewritten
        cluster-by-cluster with a sealed shard boundary between
        clusters, so every shard holds rows of exactly one cluster and
        gets a tight ``(centroid, radius)`` ball; labels travel with
        their rows (the clustered order is a permutation of the
        original).  Clustered rewrites make one streaming pass per
        cluster, still O(block) memory.  ``routing_seed`` makes the
        clustering reproducible.  The default ``None`` keeps the
        historical order-preserving rewrite (and drops any existing
        routing table — the layout changed).
        """
        if storage is not None:
            self.storage = StorageSpec.parse(storage)
        views = self.snapshot()
        old_labels = self._labels
        clusters = self._cluster_count(routing, views)
        self._shards = []
        self._labels = []
        self._tombstones = set()
        self._routing = None
        self.generation += 1
        if clusters is None:
            for block, labels in _iter_live_decoded(views, old_labels):
                self._labels.extend(labels)
                self._fill(block)
            return self
        centroids = kmeans_centroids(
            _sample_live(views), clusters, seed=routing_seed
        )
        # one streaming pass per cluster: assignment is recomputed per
        # block (deterministic, so every pass agrees) instead of being
        # materialised, keeping peak memory at O(block) even here
        for j in range(centroids.shape[0]):
            filled_before = len(self._labels)
            for block, labels in _iter_live_decoded(views, old_labels):
                member = assign_rows(block, centroids) == j
                if member.any():
                    self._labels.extend(
                        [labels[i] for i in np.flatnonzero(member)]
                    )
                    self._fill(block[member])
            if len(self._labels) > filled_before:
                self._seal_tail()  # shard boundaries align with clusters
        self._routing = build_shard_routing(
            [shard.values for shard in self._shards],
            generation=self.generation,
            n_clusters=int(centroids.shape[0]),
            seed=routing_seed,
        )
        return self

    def _cluster_count(self, routing, views) -> int | None:
        """Resolve the ``routing`` argument of :meth:`compact`."""
        if routing is None or routing is False:
            return None
        live = sum(view.live_size for view in views)
        if live == 0:
            raise ValueError("cannot build routing over an empty store")
        if routing is True:
            return default_cluster_count(live, self.shard_capacity)
        clusters = int(routing)
        if clusters < 1:
            raise ValueError(f"routing cluster count must be >= 1, got {clusters}")
        return clusters

    def _seal_tail(self) -> None:
        """Seal the tail shard so the next fill opens a fresh one.

        The cluster-boundary primitive of clustered compaction: capping
        the shard's capacity at its size makes :meth:`_Shard.admit`
        return zero forever, exactly like a full shard.
        """
        if self._shards and self._shards[-1].size:
            self._shards[-1].capacity = self._shards[-1].size

    @classmethod
    def merge(
        cls,
        *stores: "ShardedSketchStore",
        shard_capacity: int | None = None,
        storage: StorageSpec | str | None = None,
    ) -> "ShardedSketchStore":
        """Fuse compatible stores into one new, compacted store.

        Rows keep their per-store order, stores are concatenated in
        argument order, and labels travel with their rows.  All stores
        must share one public configuration (the usual compatibility
        rule) **and one storage spec** — mixing precisions would
        silently blend error envelopes, so it is rejected with the
        specs named; pass ``storage=...`` explicitly to re-encode
        everything into one spec instead.  Empty stores are skipped,
        and tombstoned rows are dropped on the way through (the merged
        store starts with a clean tombstone set; budgets stay spent —
        see the module docstring).  Rows stream through in bounded
        blocks: merging mmap-loaded stores reads nothing larger than
        one block at a time, so on-disk stores far bigger than RAM
        fuse fine (see also
        :func:`repro.serving.maintenance.merge_stores` for the
        directory-to-directory form).
        """
        if not stores:
            raise ValueError("merge needs at least one store")
        specs = sorted({s.storage.name for s in stores if s._template is not None})
        if storage is None:
            if len(specs) > 1:
                raise ValueError(
                    f"cannot merge stores with different storage specs "
                    f"({', '.join(specs)}): their error envelopes differ; pass "
                    f"storage=... to re-encode the merged store into one spec"
                )
            storage = specs[0] if specs else stores[0].storage
        capacity = (
            max(store.shard_capacity for store in stores)
            if shard_capacity is None
            else shard_capacity
        )
        merged = cls(shard_capacity=capacity, storage=storage)
        for store in stores:
            if store._template is None:
                continue
            if merged._template is None:
                merged._template = store._template
            else:
                estimators.check_compatible(merged._template, store._template)
            for view in store.snapshot():
                labels = store._labels[view.start : view.start + view.size]
                if view.dead is not None:
                    keep = np.delete(np.arange(view.size), view.dead)
                    labels = [labels[i] for i in keep]
                merged._labels.extend(labels)
                offset = 0
                for block in view.iter_codes():
                    n = block.shape[0]
                    if view.dead is not None:
                        block = _drop_dead(block, offset, view.dead)
                    offset += n
                    if block.shape[0]:
                        merged._fill(
                            np.asarray(
                                view.storage.decode(block, view.scale),
                                dtype=np.float64,
                            )
                        )
        return merged

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | os.PathLike) -> None:
        """Persist the store into directory ``path``, atomically.

        One versioned binary blob per shard plus a manifest, written
        into a temporary sibling directory that is swapped into place
        only once complete — a crash mid-save leaves an existing store
        untouched, and overwriting a store that previously had more
        shards leaves no stale shard files behind.  Labels are stored
        with their types (typed JSON encoding in the shard headers);
        default positional labels are elided and regenerated on load.
        Quantised shards persist their exact storage codes and per-shard
        scales, so save/load/mmap round trips are bit-identical at every
        precision.

        The guarantee is *no corruption*, not full atomicity: a plain
        ``os.replace`` cannot exchange two directories, so there is a
        tiny window (between the two renames in the swap) in which a
        hard crash leaves ``path`` absent while the previous store sits
        intact at a hidden ``.<name>.retired-<pid>`` sibling — recover
        it with a rename; nothing is ever partially overwritten.

        Saving over a directory counts as *writing that directory's
        store*: other handles that mmap-loaded it and have not yet
        touched all their shards would map the replacement's bytes at
        stale offsets.  Re-``load`` such readers after the save.
        (Saving a store over its *own* source directory is safe — the
        write materialises every one of its shards first.)

        A store with zero rows cannot be saved — there would be no
        shard to carry the metadata, so the round trip could not be
        faithful.
        """
        if not len(self):
            raise ValueError("cannot save an empty store")
        root = Path(path)
        root.parent.mkdir(parents=True, exist_ok=True)
        staging = root.with_name(f".{root.name}.saving-{os.getpid()}")
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            views = self.snapshot()
            offset = 0
            for i, view in enumerate(views):
                labels = tuple(self._labels[offset : offset + view.size])
                if _is_positional(labels, offset):
                    # default positional labels regenerate on load from the
                    # row offsets alone; dropping them keeps big-store
                    # headers small (and load-time parsing cheap)
                    labels = ()
                offset += view.size
                # the shard's exact storage codes are written verbatim, so
                # quantised stores round-trip bit-identically; the batch
                # carries the decoded rows for the header's norm bounds
                write_batch(
                    staging / _SHARD_PATTERN.format(i),
                    _with_values(self._template, view.values, labels),
                    storage=view.storage,
                    encoded=view.codes,
                    scale=view.scale,
                )
            manifest = {
                "manifest_version": _MANIFEST_VERSION,
                "shard_capacity": self.shard_capacity,
                "n_shards": len(views),
                "n_rows": offset,
                "storage": self.storage.name,
                "config_digest": self._template.config_digest,
                "generation": self.generation,
            }
            if self._tombstones:
                manifest["tombstones"] = sorted(self._tombstones)
            routing = self.routing  # the property: fresh-layout or None
            if routing is not None:
                digest = write_routing_blob(
                    staging / ROUTING_BLOB_NAME,
                    routing.to_payload(),
                    routing.centroids,
                    routing.radii,
                )
                manifest["routing"] = {
                    "file": ROUTING_BLOB_NAME,
                    "sha256": digest,
                    "n_clusters": routing.n_clusters,
                    "generation": routing.generation,
                }
            (staging / _MANIFEST_NAME).write_text(
                json.dumps(manifest, indent=2, sort_keys=True)
            )
            _swap_into_place(staging, root)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise

    @classmethod
    def load(cls, path: str | os.PathLike, *, mmap: bool = False) -> "ShardedSketchStore":
        """Rebuild a store saved by :meth:`save` (values are bit-exact).

        With ``mmap=True`` each shard attaches as a lazy memory map:
        nothing is read until a query touches the shard, per-shard norm
        caches are computed on first touch, and the OS pages rows in
        and out on demand — stores larger than RAM stay queryable.  The
        trade-off: the per-shard values digests are only verified on
        eager loads.  All container formats are readable — the current
        version 3 (any storage spec), PR-3's version 2 and PR-2's
        version 1 (format-1 labels come back as the strings that format
        recorded).  The storage spec always comes from the manifest,
        never from ``REPRO_STORE_DTYPE``.
        """
        root = Path(path)
        manifest = read_manifest(root)
        try:
            return cls._load_shards(root, manifest, mmap)
        except KeyError as exc:
            raise SerializationError(
                f"manifest at {root / _MANIFEST_NAME} is missing required "
                f"field {exc}"
            ) from exc

    @classmethod
    def _load_shards(cls, root: Path, manifest: dict, mmap: bool) -> "ShardedSketchStore":
        # the manifest decides the storage spec (pre-quantisation
        # manifests carry no key and mean f8); the environment default
        # never applies to a load — a saved f8 store stays f8 even under
        # REPRO_STORE_DTYPE=f4, and vice versa
        store = cls(
            shard_capacity=manifest["shard_capacity"],
            storage=manifest.get("storage", "f8"),
        )
        # flat pre-generation layouts carry no shards_dir; generational
        # manifests point at the gen-NNNNN sibling the shards live in
        shard_dir = root / manifest.get("shards_dir", "")
        for i in range(manifest["n_shards"]):
            shard_path = shard_dir / _SHARD_PATTERN.format(i)
            if mmap:
                store._attach_mapped(read_batch_info(shard_path))
            else:
                store._attach_eager(*read_batch_raw(shard_path))
        store.generation = int(manifest.get("generation", 0))
        tombstones = manifest.get("tombstones", ())
        if tombstones:
            bad = [t for t in tombstones if not 0 <= int(t) < len(store)]
            if bad:
                raise SerializationError(
                    f"manifest at {root} tombstones rows {bad} outside the "
                    f"store's {len(store)} rows"
                )
            store._tombstones = {int(t) for t in tombstones}
        if len(store) != manifest["n_rows"]:
            raise SerializationError(
                f"store at {root} holds {len(store)} rows, manifest says "
                f"{manifest['n_rows']}"
            )
        if (
            store.metadata is not None
            and store.metadata.config_digest != manifest["config_digest"]
        ):
            raise SerializationError(
                f"shards at {root} come from configuration "
                f"{store.metadata.config_digest}, manifest pins "
                f"{manifest['config_digest']} — directory contents were swapped"
            )
        routing_entry = manifest.get("routing")
        if routing_entry is not None:
            payload, centroids, radii = read_routing_blob(
                shard_dir / routing_entry.get("file", ROUTING_BLOB_NAME),
                routing_entry.get("sha256"),
            )
            routing = ShardRouting.from_payload(payload, centroids, radii)
            if not routing.matches(store.shard_sizes()):
                raise SerializationError(
                    f"routing blob at {root} describes shard sizes "
                    f"{routing.shard_sizes}, the store has "
                    f"{tuple(store.shard_sizes())} — the table is stale"
                )
            store._routing = routing
        return store

    def _pin_stored_shard(self, info: BatchInfo) -> None:
        """Shared load-path validation: metadata and storage must match."""
        if info.storage != self.storage.name:
            raise SerializationError(
                f"shard at {info.path} stores {info.storage} values, the store's "
                f"manifest pins {self.storage.name} — directory contents were "
                f"swapped"
            )
        if self._template is None:
            self._check_expected_digest(info.meta)
            self._template = info.meta
        else:
            estimators.check_compatible(self._template, info.meta)

    def _attach_mapped(self, info: BatchInfo) -> None:
        """Attach one stored shard as a lazy memory-mapped shard."""
        self._pin_stored_shard(info)
        if info.n_rows:
            start = len(self._labels)
            self._labels.extend(
                info.labels or range(start, start + info.n_rows)
            )
            self._shards.append(_MappedShard(info))

    def _attach_eager(self, info: BatchInfo, raw: np.ndarray) -> None:
        """Attach one stored shard's raw codes as an in-memory shard.

        The codes land in the buffer verbatim — no decode/re-encode
        round trip, so quantised stores reload bit-identically — and
        the tail shard stays appendable up to the store's capacity.
        """
        self._pin_stored_shard(info)
        if info.n_rows:
            start = len(self._labels)
            self._labels.extend(info.labels or range(start, start + info.n_rows))
            shard = _Shard(
                max(self.shard_capacity, info.n_rows),
                info.meta.output_dim,
                self.storage,
                initial_rows=info.n_rows,
            )
            shard.adopt(raw, info.scale)
            self._shards.append(shard)


def read_manifest(path: str | os.PathLike) -> dict:
    """Read and validate a store directory's ``manifest.json``.

    The shared parsing step of :meth:`ShardedSketchStore.load`, the
    maintenance layer and the server's generation watcher — all three
    must agree on what a well-formed manifest is.  Raises
    ``FileNotFoundError`` when no manifest exists and
    :class:`SerializationError` for junk or an unsupported version.
    """
    manifest_path = Path(path) / _MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no store manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(
            f"manifest at {manifest_path} is not valid JSON: {exc}"
        ) from exc
    if manifest.get("manifest_version") not in _SUPPORTED_MANIFEST_VERSIONS:
        raise SerializationError(
            f"unsupported manifest version {manifest.get('manifest_version')!r}"
        )
    return manifest


def _drop_dead(block: np.ndarray, offset: int, dead: np.ndarray) -> np.ndarray:
    """``block`` (a view's rows ``[offset, offset + n)``) minus tombstones.

    ``dead`` is the view's sorted local tombstone array; membership is
    resolved by binary search so a block touching no tombstones costs
    O(n log d), not O(n * d).
    """
    local = np.arange(offset, offset + block.shape[0])
    hit = np.searchsorted(dead, local)
    dead_here = (hit < dead.size) & (
        dead[np.minimum(hit, dead.size - 1)] == local
    )
    return block[~dead_here]


def _iter_live_decoded(views: list[ShardView], labels: list):
    """Live rows of ``views`` as ``(float64 block, labels)`` pairs.

    The shared streaming front end of :meth:`ShardedSketchStore.compact`:
    blocks arrive decoded to float64 with tombstoned rows dropped and
    each surviving row's label alongside, bounded by the block size —
    nothing store-sized is ever materialised.
    """
    for view in views:
        view_labels = labels[view.start : view.start + view.size]
        offset = 0
        for block in view.iter_codes():
            n = block.shape[0]
            block_labels = view_labels[offset:offset + n]
            if view.dead is not None:
                keep = _block_live(offset, n, view.dead)
                block = block[keep]
                block_labels = [block_labels[i] for i in keep]
            offset += n
            if block.shape[0]:
                yield (
                    np.asarray(
                        view.storage.decode(block, view.scale), dtype=np.float64
                    ),
                    block_labels,
                )


def _block_live(offset: int, n: int, dead: np.ndarray) -> np.ndarray:
    """Local indices (within ``[offset, offset+n)``) of untombstoned rows."""
    local = np.arange(offset, offset + n)
    hit = np.searchsorted(dead, local)
    dead_here = (hit < dead.size) & (dead[np.minimum(hit, dead.size - 1)] == local)
    return np.flatnonzero(~dead_here)


def _sample_live(
    views: list[ShardView], target: int = DEFAULT_TRAIN_SAMPLE
) -> np.ndarray:
    """A deterministic stride sample of the live rows, for k-means.

    Every ``step``-th live row (step chosen so roughly ``target`` rows
    come back) — spread across the whole store, no randomness, so
    repeated compactions of the same store train on the same sample.
    """
    total = sum(view.live_size for view in views)
    step = max(1, total // max(target, 1))
    sample, seen = [], 0
    for block, _ in _iter_live_decoded(views, [None] * sum(v.size for v in views)):
        idx = np.arange(seen, seen + block.shape[0])
        take = block[idx % step == 0]
        if take.shape[0]:
            sample.append(take)
        seen += block.shape[0]
    return np.concatenate(sample)


def _is_positional(labels: tuple, start: int) -> bool:
    """Whether ``labels`` are exactly the default global positions.

    Such labels are not persisted: the loader regenerates them from row
    offsets (``info.labels or range(...)``), so the round trip is
    unchanged while 100k-row headers stay kilobytes instead of
    megabytes.  The type check keeps e.g. ``np.int64`` labels stored —
    they only *equal* the defaults, and must round-trip as written.
    """
    return all(
        type(label) is int and label == start + i for i, label in enumerate(labels)
    )


def _swap_into_place(staging: Path, root: Path) -> None:
    """Atomically replace ``root`` with the fully written ``staging`` dir."""
    if root.exists():
        retired = root.with_name(f".{root.name}.retired-{os.getpid()}")
        if retired.exists():
            shutil.rmtree(retired)
        os.replace(root, retired)
        try:
            os.replace(staging, root)
        except BaseException:
            os.replace(retired, root)  # roll the old store back
            raise
        shutil.rmtree(retired)
    else:
        os.replace(staging, root)


def _as_template(release) -> SketchBatch:
    """A zero-row batch carrying ``release``'s shared metadata."""
    if not isinstance(release, SketchBatch):
        release = SketchBatch.from_sketches([release])
    empty = np.empty((0, release.output_dim))
    return dataclasses.replace(release, values=empty, labels=())


def _with_values(template: SketchBatch, values: np.ndarray, labels: tuple) -> SketchBatch:
    return dataclasses.replace(template, values=values, labels=labels)
