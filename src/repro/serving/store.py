"""Append-only sharded storage for published sketch batches.

:class:`ShardedSketchStore` is the serving layer's data plane: released
rows accumulate into fixed-capacity *shards*, each a preallocated
``(capacity, k)`` float64 buffer that fills in place.  Appending ``n``
rows therefore copies exactly ``n`` rows — never the whole store, unlike
a flat index that re-``concatenate``s every chunk per insert.  Buffers
grow geometrically (doubling) up to the shard capacity, so small stores
stay small while the amortised cost per appended row is O(1).

Every shard caches the squared norms of its filled rows, maintained
incrementally at append time.  The distance estimators need exactly
these norms (``||u||^2`` terms of the expanded ``||u - v||^2``), so
queries reuse the cache instead of recomputing ``n`` norms per query.

Stores persist as a directory — a ``manifest.json`` plus one versioned
binary blob per shard (:mod:`repro.serving.serialization`) — and load
back bit-exactly.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import numpy as np

from repro.core import estimators
from repro.core.sketch import PrivateSketch, SketchBatch
from repro.serving.serialization import SerializationError, read_batch, write_batch

#: Default rows per shard; 2^16 rows of a k=256 sketch is ~128 MiB.
DEFAULT_SHARD_CAPACITY = 65536

_MANIFEST_NAME = "manifest.json"
_MANIFEST_VERSION = 1
_SHARD_PATTERN = "shard-{:05d}.skb"


class _Shard:
    """One preallocated block of sketch rows plus its cached norms."""

    __slots__ = ("capacity", "size", "_buffer", "_sq_norms")

    def __init__(self, capacity: int, output_dim: int, initial_rows: int = 0) -> None:
        self.capacity = capacity
        self.size = 0
        allocate = min(capacity, max(initial_rows, 1))
        self._buffer = np.empty((allocate, output_dim), dtype=np.float64)
        self._sq_norms = np.empty(allocate, dtype=np.float64)

    @property
    def free(self) -> int:
        return self.capacity - self.size

    def append(self, rows: np.ndarray) -> None:
        """Copy ``rows`` into the buffer, extending the norm cache."""
        end = self.size + rows.shape[0]
        if end > self._buffer.shape[0]:  # grow geometrically within capacity
            new_rows = min(self.capacity, max(end, 2 * self._buffer.shape[0]))
            grown = np.empty((new_rows, self._buffer.shape[1]), dtype=np.float64)
            grown[: self.size] = self._buffer[: self.size]
            norms = np.empty(new_rows, dtype=np.float64)
            norms[: self.size] = self._sq_norms[: self.size]
            self._buffer, self._sq_norms = grown, norms
        self._buffer[self.size : end] = rows
        self._sq_norms[self.size : end] = np.einsum("ij,ij->i", rows, rows)
        self.size = end

    @property
    def values(self) -> np.ndarray:
        """The filled rows as a read-only view (no copy)."""
        view = self._buffer[: self.size]
        view.flags.writeable = False
        return view

    @property
    def sq_norms(self) -> np.ndarray:
        """Cached ``||row||^2`` for every filled row (read-only view)."""
        view = self._sq_norms[: self.size]
        view.flags.writeable = False
        return view


class ShardedSketchStore:
    """Append-only store of compatible released sketches, in shards.

    All rows must come from one public configuration (same config
    digest, same noise metadata); the first added release pins the
    metadata and later additions are checked against it with the same
    compatibility rule as the estimators.

    Labels default to the row's global position, matching
    :class:`~repro.core.knn.PrivateNeighborIndex`.
    """

    def __init__(self, shard_capacity: int = DEFAULT_SHARD_CAPACITY) -> None:
        if shard_capacity < 1:
            raise ValueError(f"shard_capacity must be >= 1, got {shard_capacity}")
        self.shard_capacity = int(shard_capacity)
        self._shards: list[_Shard] = []
        self._labels: list[object] = []
        self._template: SketchBatch | None = None  # zero-row metadata carrier

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return sum(shard.size for shard in self._shards)

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def labels(self) -> list:
        return list(self._labels)

    def label(self, i: int):
        """The label of stored row ``i`` (no copy of the label list)."""
        return self._labels[i]

    @property
    def metadata(self) -> SketchBatch | None:
        """A zero-row batch carrying the store's shared metadata."""
        return self._template

    # -- appending -----------------------------------------------------------

    def add(self, sketch: PrivateSketch, label=None) -> None:
        """Append one published sketch (label defaults to its position)."""
        self._append(
            sketch,
            np.asarray(sketch.values, dtype=np.float64)[np.newaxis, :],
            [len(self._labels) if label is None else label],
        )

    def add_batch(self, batch: SketchBatch, labels=None) -> None:
        """Append every row of a published batch in one pass."""
        if labels is None:
            start = len(self._labels)
            labels = batch.labels or range(start, start + len(batch))
        elif len(labels) != len(batch):
            raise ValueError(f"got {len(labels)} labels for {len(batch)} rows")
        self._append(batch, np.asarray(batch.values, dtype=np.float64), list(labels))

    def _append(self, release, rows: np.ndarray, labels: list) -> None:
        if self._template is None:
            self._template = _as_template(release)
        else:
            estimators.check_compatible(self._template, release)
        self._labels.extend(labels)
        offset = 0
        while offset < rows.shape[0]:
            if not self._shards or self._shards[-1].free == 0:
                self._shards.append(
                    _Shard(
                        self.shard_capacity,
                        self._template.output_dim,
                        initial_rows=min(rows.shape[0] - offset, self.shard_capacity),
                    )
                )
            shard = self._shards[-1]
            take = min(shard.free, rows.shape[0] - offset)
            shard.append(rows[offset : offset + take])
            offset += take

    # -- shard access --------------------------------------------------------

    def shard_values(self, i: int) -> np.ndarray:
        """Filled rows of shard ``i`` as a zero-copy read-only view."""
        return self._shards[i].values

    def shard_sq_norms(self, i: int) -> np.ndarray:
        """Cached squared norms of shard ``i`` (zero-copy, read-only)."""
        return self._shards[i].sq_norms

    def shard_sizes(self) -> list[int]:
        return [shard.size for shard in self._shards]

    def shard_batch(self, i: int) -> SketchBatch:
        """Shard ``i`` as a :class:`SketchBatch` sharing the buffer.

        Labels are carried through as stored (stringification only
        happens on :meth:`save`, where it is the serialization format's
        contract).
        """
        start = sum(s.size for s in self._shards[:i])
        return _with_values(
            self._template,
            self._shards[i].values,
            tuple(self._labels[start : start + self._shards[i].size]),
        )

    def to_batch(self) -> SketchBatch:
        """Materialise the whole store as one batch (copies all rows).

        Labels are carried through as stored, not stringified.
        """
        if self._template is None:
            raise ValueError("the store is empty")
        values = (
            np.concatenate([shard.values for shard in self._shards])
            if self._shards
            else np.empty((0, self._template.output_dim))
        )
        return _with_values(self._template, values, tuple(self._labels))

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | os.PathLike) -> None:
        """Persist the store into directory ``path`` (created if needed).

        One versioned binary blob per shard plus a manifest; labels are
        stringified (the same contract as :meth:`SketchBatch.to_bytes`).
        A store with zero rows cannot be saved — there would be no shard
        to carry the metadata, so the round trip could not be faithful.
        """
        if not len(self):
            raise ValueError("cannot save an empty store")
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        offset = 0
        for i, shard in enumerate(self._shards):
            labels = tuple(str(l) for l in self._labels[offset : offset + shard.size])
            offset += shard.size
            write_batch(root / _SHARD_PATTERN.format(i), _with_values(self._template, shard.values, labels))
        manifest = {
            "manifest_version": _MANIFEST_VERSION,
            "shard_capacity": self.shard_capacity,
            "n_shards": len(self._shards),
            "n_rows": len(self),
            "config_digest": self._template.config_digest,
        }
        (root / _MANIFEST_NAME).write_text(json.dumps(manifest, indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str | os.PathLike) -> "ShardedSketchStore":
        """Rebuild a store saved by :meth:`save` (values are bit-exact)."""
        root = Path(path)
        manifest_path = root / _MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(f"no store manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"manifest at {manifest_path} is not valid JSON: {exc}"
            ) from exc
        if manifest.get("manifest_version") != _MANIFEST_VERSION:
            raise SerializationError(
                f"unsupported manifest version {manifest.get('manifest_version')!r}"
            )
        try:
            return cls._load_shards(root, manifest)
        except KeyError as exc:
            raise SerializationError(
                f"manifest at {manifest_path} is missing required field {exc}"
            ) from exc

    @classmethod
    def _load_shards(cls, root: Path, manifest: dict) -> "ShardedSketchStore":
        store = cls(shard_capacity=manifest["shard_capacity"])
        for i in range(manifest["n_shards"]):
            batch = read_batch(root / _SHARD_PATTERN.format(i))
            store.add_batch(batch)
        if len(store) != manifest["n_rows"]:
            raise SerializationError(
                f"store at {root} holds {len(store)} rows, manifest says "
                f"{manifest['n_rows']}"
            )
        if (
            store.metadata is not None
            and store.metadata.config_digest != manifest["config_digest"]
        ):
            raise SerializationError(
                f"shards at {root} come from configuration "
                f"{store.metadata.config_digest}, manifest pins "
                f"{manifest['config_digest']} — directory contents were swapped"
            )
        return store


def _as_template(release) -> SketchBatch:
    """A zero-row batch carrying ``release``'s shared metadata."""
    if not isinstance(release, SketchBatch):
        release = SketchBatch.from_sketches([release])
    empty = np.empty((0, release.output_dim))
    return dataclasses.replace(release, values=empty, labels=())


def _with_values(template: SketchBatch, values: np.ndarray, labels: tuple) -> SketchBatch:
    return dataclasses.replace(template, values=values, labels=labels)
