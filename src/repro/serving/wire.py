"""Wire codec: versioned JSON envelopes for queries and results.

The network frontend (:mod:`repro.serving.server` /
:mod:`repro.serving.client`) speaks this format; it is also suitable
for logging or replaying query workloads.  One envelope shape covers
everything::

    {"format": "repro.serving.wire", "version": 1,
     "kind": "query" | "result" | "error", ...}

* **Queries** carry their kind tag (``top_k`` / ``radius`` / ``cross``
  / ``pairwise`` / ``norms``) plus kind-specific parameters.  Released
  sketch payloads are embedded as the *version-2 binary container* of
  :mod:`repro.serving.serialization` (base64 inside the JSON), so the
  float64 values cross the wire bit-exactly and with their digests —
  the JSON layer never touches a sketch value.
* **Results** carry the payload in a shape that round-trips exactly:
  labels use the typed JSON encoding of
  :func:`~repro.serving.serialization.encode_label` (integer labels
  stay integers — the store-persistence lesson applies to the wire
  too), scalar estimates ride as JSON numbers (Python's shortest-repr
  float serialisation round-trips every finite double exactly; the
  rare non-finite scalar is hex-tagged so the output stays RFC 8259
  JSON), and matrix payloads ride as base64 raw little-endian float64
  — bit-exact including non-finite values.
* **Errors** carry the server-side exception type and message, so a
  remote backend surfaces the *same* exception class a local
  :meth:`~repro.serving.service.DistanceService.execute` would raise.

Anything malformed — not JSON, wrong ``format`` tag, an unknown kind,
a truncated embedded blob — raises :class:`WireError`.  A version
other than :data:`WIRE_VERSION` is rejected up front: the envelope is
versioned precisely so future revisions can evolve the schema without
old peers misreading it.
"""

from __future__ import annotations

import base64
import binascii
import json
import math

import numpy as np

from repro.core.sketch import PrivateSketch, SketchBatch
from repro.serving.queries import (
    QUERY_TYPES,
    CrossQuery,
    NormsQuery,
    PairwiseQuery,
    QueryResult,
    QueryStats,
    RadiusQuery,
    RoutingSpec,
    TopKQuery,
)
from repro.serving.serialization import (
    SerializationError,
    batch_from_bytes,
    batch_to_bytes,
    decode_label,
    encode_label,
)

WIRE_FORMAT = "repro.serving.wire"
WIRE_VERSION = 1


class WireError(ValueError):
    """Raised when a wire envelope is malformed or its version unknown."""


_QUERY_BY_KIND = {cls.kind: cls for cls in QUERY_TYPES}


# -- releases (sketches / batches) ride as the v2 binary container -------------


def _encode_release(release) -> dict:
    # live query sketches always ride at full precision, pinned to the
    # version-2 container (the "v2" key is a promise: a not-yet-upgraded
    # peer must keep decoding our queries, and v3 buys an f8 payload
    # nothing).  The explicit "storage" tag mirrors the container header
    # so peers (and logs) see the payload dtype without parsing the
    # blob; a future revision can ship pre-quantised payloads under a
    # new tag value and container key.
    if isinstance(release, PrivateSketch):
        batch = SketchBatch.from_sketches([release])
        return {
            "as": "sketch",
            "storage": "f8",
            "v2": _b64(batch_to_bytes(batch, version=2)),
        }
    if isinstance(release, SketchBatch):
        return {
            "as": "batch",
            "storage": "f8",
            "v2": _b64(batch_to_bytes(release, version=2)),
        }
    raise WireError(
        f"query payload must be a PrivateSketch or SketchBatch, "
        f"got {type(release).__name__}"
    )


def _decode_release(encoded) -> object:
    if not isinstance(encoded, dict) or "v2" not in encoded:
        raise WireError("release payload must be an object with a 'v2' blob")
    if encoded.get("storage", "f8") != "f8":
        raise WireError(
            f"this build only decodes f8 sketch payloads, "
            f"got storage {encoded.get('storage')!r}"
        )
    try:
        batch = batch_from_bytes(_unb64(encoded["v2"]))
    except SerializationError as exc:
        raise WireError(f"embedded sketch payload is invalid: {exc}") from exc
    if encoded.get("as") == "sketch":
        if len(batch) != 1:
            raise WireError(
                f"a 'sketch' release must embed exactly one row, got {len(batch)}"
            )
        return batch.row(0)
    return batch


def _dumps(payload) -> bytes:
    # allow_nan=False guarantees RFC 8259 output (json would otherwise
    # emit bare NaN/Infinity tokens that non-Python parsers reject);
    # non-finite scalars must go through _encode_float instead
    return json.dumps(payload, sort_keys=True, allow_nan=False).encode("utf-8")


def _encode_float(value) -> object:
    """A JSON-safe exact float, sharing the label codec's hex tagging.

    Finite doubles ride as JSON numbers (shortest-repr round-trips them
    exactly); the rare non-finite scalar reuses
    :func:`~repro.serving.serialization.encode_label`'s ``f8`` tag so
    there is exactly one strict-JSON encoding of exact doubles.
    """
    return encode_label(float(value))


def _decode_float(encoded) -> float:
    try:
        return float(decode_label(encoded))
    except (TypeError, ValueError) as exc:
        raise WireError(f"malformed float payload {encoded!r}") from exc


def _b64(blob: bytes) -> str:
    return base64.b64encode(blob).decode("ascii")


def _unb64(text) -> bytes:
    if not isinstance(text, str):
        raise WireError(f"expected a base64 string, got {type(text).__name__}")
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as exc:
        raise WireError(f"invalid base64 payload: {exc}") from exc


def _encode_array(values: np.ndarray) -> dict:
    values = np.ascontiguousarray(values, dtype="<f8")
    return {"shape": list(values.shape), "f8": _b64(values.tobytes())}


def _decode_array(encoded) -> np.ndarray:
    if not isinstance(encoded, dict) or "f8" not in encoded or "shape" not in encoded:
        raise WireError("array payload must carry 'shape' and 'f8' fields")
    try:
        shape = tuple(int(n) for n in encoded["shape"])
    except (TypeError, ValueError) as exc:
        raise WireError(f"malformed array shape {encoded['shape']!r}") from exc
    if any(n < 0 for n in shape):
        # negative pairs can fool the product check below and reach
        # reshape(), which would raise a raw numpy error instead of ours
        raise WireError(f"malformed array shape {shape!r}")
    flat = np.frombuffer(_unb64(encoded["f8"]), dtype="<f8")
    # math.prod is arbitrary-precision: an int64 product could be wrapped
    # to a small value by absurd dimensions and sneak past this check
    expected = math.prod(shape)
    if flat.size != expected:
        raise WireError(
            f"array payload has {flat.size} values for shape {shape}"
        )
    return flat.astype(np.float64, copy=True).reshape(shape)


# -- queries -------------------------------------------------------------------


def _query_body(query) -> dict:
    if type(query) not in QUERY_TYPES:
        # mirror DistanceService.execute exactly — including rejecting
        # subclasses, whose extra state would silently vanish on the
        # wire — so local and remote misuse raise the same TypeError
        raise TypeError(
            f"execute() takes a typed query "
            f"(one of {[t.__name__ for t in QUERY_TYPES]}), "
            f"got {type(query).__name__}"
        )
    if isinstance(query, TopKQuery):
        body = {"k": query.k, "release": _encode_release(query.queries)}
        if query.routing is not None:
            # omitted when None so pre-routing peers parse the envelope
            # unchanged; WIRE_VERSION stays 1
            body["routing"] = {"nprobe": query.routing.nprobe}
        return body
    if isinstance(query, RadiusQuery):
        body = {
            "radius_sq": _encode_float(query.radius_sq),  # inf is a legal radius
            "release": _encode_release(query.query),
        }
        if query.routing is not None:
            body["routing"] = {"nprobe": query.routing.nprobe}
        return body
    if isinstance(query, CrossQuery):
        return {"release": _encode_release(query.queries)}
    if isinstance(query, PairwiseQuery):
        return {"indices": list(query.indices)}
    return {}  # NormsQuery carries no parameters


def _query_envelope(query) -> dict:
    body = _query_body(query)  # validates the type before .kind is read
    envelope = {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "kind": "query",
        "query": query.kind,
    }
    envelope.update(body)
    return envelope


def encode_query(query) -> bytes:
    """Serialise one typed query into a versioned JSON envelope."""
    return _dumps(_query_envelope(query))


def encode_queries(queries) -> bytes:
    """Serialise a sequence of typed queries as a JSON array of envelopes."""
    return _dumps([_query_envelope(query) for query in queries])


def decode_query(blob: bytes):
    """Inverse of :func:`encode_query`; validates every layer."""
    return _parse_query(_open_envelope(blob, "query"))


def decode_queries(blob: bytes) -> list:
    """Inverse of :func:`encode_queries`."""
    envelopes = _load_envelope_json(blob)
    if not isinstance(envelopes, list):
        raise WireError("a query batch must be a JSON array of envelopes")
    return [_parse_query(_check_envelope(env, "query")) for env in envelopes]


def _decode_routing(spec) -> RoutingSpec | None:
    if spec is None:
        return None
    if not isinstance(spec, dict):
        raise WireError(f"malformed routing spec {spec!r}: expected an object")
    # RoutingSpec validates nprobe itself; a bad value raises ValueError
    # from the constructor, the same failure a local caller would see
    return RoutingSpec(nprobe=spec.get("nprobe"))


def _parse_query(envelope: dict):
    kind = envelope.get("query")
    cls = _QUERY_BY_KIND.get(kind)
    if cls is None:
        raise WireError(
            f"unknown query kind {kind!r} "
            f"(this build answers {sorted(_QUERY_BY_KIND)})"
        )
    try:
        if cls is TopKQuery:
            return TopKQuery(
                queries=_decode_release(envelope["release"]),
                k=envelope["k"],
                routing=_decode_routing(envelope.get("routing")),
            )
        if cls is RadiusQuery:
            return RadiusQuery(
                query=_decode_release(envelope["release"]),
                radius_sq=_decode_float(envelope["radius_sq"]),
                routing=_decode_routing(envelope.get("routing")),
            )
        if cls is CrossQuery:
            return CrossQuery(queries=_decode_release(envelope["release"]))
        if cls is PairwiseQuery:
            return PairwiseQuery(indices=tuple(envelope["indices"]))
        return NormsQuery()
    except KeyError as exc:
        raise WireError(f"query envelope is missing required field {exc}") from None


# -- results -------------------------------------------------------------------


def _encode_ranking(ranking) -> list:
    return [[encode_label(label), _encode_float(est)] for label, est in ranking]


def _decode_ranking(encoded) -> list:
    try:
        return [(decode_label(label), _decode_float(est)) for label, est in encoded]
    except (TypeError, ValueError) as exc:
        raise WireError(f"malformed ranking payload: {exc}") from exc


def _result_envelope(result: QueryResult, query) -> dict:
    kind = query if isinstance(query, str) else query.kind
    if kind == "top_k":
        payload = [_encode_ranking(ranking) for ranking in result.payload]
    elif kind == "radius":
        payload = _encode_ranking(result.payload)
    elif kind in ("cross", "pairwise", "norms"):
        payload = _encode_array(result.payload)
    else:
        raise WireError(f"unknown query kind {kind!r}")
    return {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "kind": "result",
        "query": kind,
        "payload": payload,
        "stats": result.stats.as_dict(),
    }


def encode_result(result: QueryResult, query) -> bytes:
    """Serialise one :class:`QueryResult` for the query that produced it.

    The query (or its kind tag) decides the payload schema; the stats
    ride verbatim so remote clients see the server-side counters.
    """
    return _dumps(_result_envelope(result, query))


def encode_results(results, queries) -> bytes:
    """Serialise parallel sequences of results and their queries."""
    return _dumps([_result_envelope(r, q) for r, q in zip(results, queries)])


def decode_result(blob: bytes) -> QueryResult:
    """Inverse of :func:`encode_result` (self-describing: no query needed)."""
    return _parse_result(_open_envelope(blob, "result"))


def decode_results(blob: bytes) -> list[QueryResult]:
    """Inverse of :func:`encode_results`."""
    envelopes = _load_envelope_json(blob)
    if not isinstance(envelopes, list):
        raise WireError("a result batch must be a JSON array of envelopes")
    return [_parse_result(_check_envelope(env, "result")) for env in envelopes]


def _parse_result(envelope: dict) -> QueryResult:
    kind = envelope.get("query")
    try:
        payload = envelope["payload"]
        stats = envelope["stats"]
    except KeyError as exc:
        raise WireError(f"result envelope is missing required field {exc}") from None
    if kind == "top_k":
        if not isinstance(payload, list):
            raise WireError("top_k payload must be a list of rankings")
        decoded = [_decode_ranking(ranking) for ranking in payload]
    elif kind == "radius":
        decoded = _decode_ranking(payload)
    elif kind in ("cross", "pairwise", "norms"):
        decoded = _decode_array(payload)
    else:
        raise WireError(f"unknown query kind {kind!r}")
    return QueryResult(payload=decoded, stats=_decode_stats(stats))


def _decode_stats(encoded) -> QueryStats:
    if not isinstance(encoded, dict):
        raise WireError("result stats must be an object")
    known = {field: encoded[field] for field in encoded if field in _STATS_FIELDS}
    try:
        return QueryStats(**known)
    except TypeError as exc:  # pragma: no cover - defensive
        raise WireError(f"malformed stats payload: {exc}") from exc


_STATS_FIELDS = frozenset(QueryStats.__dataclass_fields__)


# -- errors --------------------------------------------------------------------

#: Exception classes a server is allowed to transport; anything else
#: degrades to ValueError on the client (never arbitrary class lookup).
#: ``ConnectionError`` rides along for the router topology: a router
#: server whose *backend* store server is unreachable reports the
#: failure as HTTP 502 with this envelope, so the outer client's
#: ConnectionError names the actual dead backend instead of a generic
#: internal error.
_ERROR_TYPES = {
    "ValueError": ValueError,
    "TypeError": TypeError,
    "IndexError": IndexError,
    "WireError": WireError,
    "ConnectionError": ConnectionError,
}


def encode_error(exc: BaseException) -> bytes:
    """Serialise an exception so the client can re-raise its class."""
    name = type(exc).__name__
    if name not in _ERROR_TYPES:
        name = "ValueError"
    envelope = {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "kind": "error",
        "error": name,
        "message": str(exc),
    }
    return _dumps(envelope)


def decode_error(blob: bytes) -> BaseException:
    """Rebuild the transported exception (always from the allowlist)."""
    envelope = _open_envelope(blob, "error")
    cls = _ERROR_TYPES.get(envelope.get("error"), ValueError)
    return cls(envelope.get("message", "remote error"))


# -- the envelope itself -------------------------------------------------------


def _load_envelope_json(blob: bytes):
    try:
        return json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"envelope is not valid JSON: {exc}") from exc


def _check_envelope(envelope, expected_kind: str) -> dict:
    if not isinstance(envelope, dict):
        raise WireError("envelope must be a JSON object")
    if envelope.get("format") != WIRE_FORMAT:
        raise WireError(
            f"not a {WIRE_FORMAT} envelope (format tag {envelope.get('format')!r})"
        )
    version = envelope.get("version")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version!r} "
            f"(this build speaks version {WIRE_VERSION})"
        )
    kind = envelope.get("kind")
    if kind != expected_kind:
        raise WireError(f"expected a {expected_kind} envelope, got {kind!r}")
    return envelope


def _open_envelope(blob: bytes, expected_kind: str) -> dict:
    return _check_envelope(_load_envelope_json(blob), expected_kind)
