"""Network query frontend: serve a saved sketch store over HTTP.

:class:`SketchQueryServer` exposes one
:class:`~repro.serving.service.DistanceService` (or a scatter-gather
:class:`~repro.serving.router.RouterService`) over plain HTTP using
only the standard library (``http.server.ThreadingHTTPServer`` — one
thread per connection; the heavy lifting inside a query is BLAS, which
releases the GIL, and the service's own
:class:`~repro.serving.execution.ExecutionPolicy` fans shard blocks
across its worker pool independently of connection threads).

Endpoints (all bodies are :mod:`repro.serving.wire` envelopes):

=====================  =======================================================
``POST /query``        one query envelope in, one result envelope out
``POST /query-many``   a JSON array of query envelopes in, results out
``GET /healthz``       liveness + store shape: rows, live rows, shards,
                       generation, tombstone count, config digest, worker
                       pid, cache counters when caching is on
``GET /meta``          the store's public metadata header (no values)
=====================  =======================================================

Client-side errors — a malformed envelope, an incompatible query, an
empty store — come back as status 400 with an *error envelope* carrying
the exception class and message, so
:class:`~repro.serving.client.DistanceClient` re-raises exactly what a
local ``execute()`` would have raised.  An unreachable *backend* (a
router frontend whose store server died) is 502 with a
``ConnectionError`` envelope naming the backend.  Unexpected server
faults are 500 with a generic message (internals never leak to the
wire).  A client that disconnects mid-request or mid-response is not an
error at all: the handler drops the connection quietly instead of
spewing a traceback per hung-up client under load.

**Scale-out is process-level.**  The store directory is opened with
``mmap=True`` by default, so every server process over one directory
maps the *same* shard files read-only and shares the OS page cache.
``python -m repro.serving.server --store DIR --processes N`` launches
``N`` worker processes all listening on **one** port via
``SO_REUSEPORT`` (the kernel load-balances connections across the
workers), prints a single URL, and supervises the workers — start as
many as the machine has cores, no external load balancer required.
``--cache ENTRIES`` enables a per-worker LRU of result envelopes
(:class:`~repro.serving.cache.ReleaseCache` — safe because releases
are deterministic; see that module for the no-extra-budget argument).
``--watch SECONDS`` makes every worker follow the store directory
across maintenance: when :func:`~repro.serving.maintenance.compact_store`
publishes a new generation, workers hot-swap it in without a restart
(in-flight queries finish on the old snapshot, caches invalidate via
the generation component of the store token).

Run from the command line::

    python -m repro.serving.server --store path/to/store --port 8790 \
        --processes 4 --cache 4096

and point a :class:`~repro.serving.client.DistanceClient` at the
printed URL.  The URL line always advertises a *connectable* host: a
wildcard bind (``--host 0.0.0.0`` / ``::``) is advertised as the
loopback address (remote clients substitute the machine's name), and
IPv6 hosts are bracketed — launchers parse this line, so it must never
print an unconnectable ``http://0.0.0.0:PORT``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import multiprocessing
import os
import queue
import signal
import socket
import sys
import threading
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serving import wire
from repro.serving.cache import ReleaseCache
from repro.serving.execution import ExecutionPolicy
from repro.serving.queries import CrossQuery, PairwiseQuery, TopKQuery
from repro.serving.service import DistanceService
from repro.serving.store import ShardedSketchStore, read_manifest

#: Default port; chosen out of the way of common dev servers.
DEFAULT_PORT = 8790

#: Request bodies above this size are rejected with 413 — a query is a
#: handful of sketch rows, not a bulk upload.  (256 MiB admits ~500k
#: base64-encoded rows of a k=256 sketch, far beyond any sane query.)
MAX_BODY_BYTES = 256 * 1024 * 1024

#: Matrix results above this many float64 cells (~1 GiB) are refused:
#: a bytes-cheap request must not be able to force a quadratically
#: larger allocation on the server (``PairwiseQuery(indices=(0,) * 1M)``
#: is a ~3 MB body demanding an 8 TB response).  Local execution is
#: deliberately uncapped — this is a network-frontend resource policy,
#: and capped clients can chunk their query instead.
MAX_RESULT_CELLS = 1 << 27

#: The client hung up: not a server fault, never worth a traceback.
_CLIENT_DISCONNECT = (BrokenPipeError, ConnectionResetError)


def _query_rows(release) -> int:
    values = getattr(release, "values", None)
    if values is None:
        return 0  # malformed; execute() will reject it properly
    return 1 if getattr(values, "ndim", 1) == 1 else values.shape[0]


def _result_cells(query, store) -> int:
    """Upper bound on the result entries a query makes the server hold."""
    if isinstance(query, PairwiseQuery):
        return len(query.indices) ** 2
    if isinstance(query, CrossQuery):
        return _query_rows(query.queries) * len(store)
    if isinstance(query, TopKQuery):
        # one (label, estimate) pair per query row per winner
        return _query_rows(query.queries) * min(query.k, len(store))
    # norms return one entry per stored row; a radius query's worst case
    # (radius_sq=inf) hits every stored row — neither is free, and a
    # /query-many batch of them must not slip under the cap as zero
    return len(store)


def _check_result_size(queries, store) -> None:
    """Refuse a request whose *combined* results exceed the cell cap.

    Summed across a ``/query-many`` batch — ``execute_many`` holds every
    result until the batch is encoded, so the batch is the allocation
    unit, not the individual query.
    """
    cells = sum(_result_cells(query, store) for query in queries)
    if cells > MAX_RESULT_CELLS:
        raise ValueError(
            f"request would produce {cells} result cells, over this server's "
            f"{MAX_RESULT_CELLS}-cell limit — split it into smaller queries"
        )


# -- host handling: bind vs advertise ------------------------------------------

_WILDCARDS_V4 = ("", "0.0.0.0")
_WILDCARDS_V6 = ("::", "::0", "0:0:0:0:0:0:0:0")


def _address_family(host: str) -> int:
    """The socket family ``host`` needs (IPv6 literals and names included)."""
    if not host:
        return socket.AF_INET
    if ":" in host:
        return socket.AF_INET6
    try:
        infos = socket.getaddrinfo(host, None, type=socket.SOCK_STREAM)
    except socket.gaierror:
        return socket.AF_INET  # let bind() produce the real error message
    return infos[0][0]


def _advertised_host(bind_host: str) -> str:
    """A *connectable* host for the bind address.

    ``0.0.0.0`` / ``::`` accept on every interface but are not routable
    destinations — advertising them produces URLs nothing can connect
    to, so wildcard binds advertise the loopback address (correct for
    same-machine launchers, which is what parses the URL line; remote
    clients substitute the machine's actual name).  Everything else is
    advertised as bound.
    """
    if bind_host in _WILDCARDS_V4:
        return "127.0.0.1"
    if bind_host in _WILDCARDS_V6:
        return "::1"
    return bind_host


def _format_host(host: str) -> str:
    """Bracket IPv6 literals so ``http://host:port`` stays parseable."""
    return f"[{host}]" if ":" in host else host


class _QueryHandler(BaseHTTPRequestHandler):
    """One HTTP request against the wrapped service (set by subclass)."""

    service: DistanceService  # injected via the per-server subclass
    cache: ReleaseCache | None = None  # injected likewise when enabled
    server_version = "repro-sketch-query/1"
    # responses go out as two writes (header block, then body); without
    # this, Nagle holds the body back waiting for the client's delayed
    # ACK of the headers — tens of ms added to every keep-alive reply
    disable_nagle_algorithm = True
    #: per-connection socket timeout — a client that stalls mid-body must
    #: not pin a handler thread (and its pending read buffer) forever
    timeout = 60
    # HTTP/1.1 keep-alive: DistanceClient pools connections and reuses
    # them across requests, so a query costs a round trip, not a connect
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # queries are high-rate; logging is the load balancer's job

    def _reply(
        self,
        status: int,
        body: bytes,
        content_type="application/json",
        cache_state: str | None = None,
    ):
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            if cache_state is not None:
                self.send_header("X-Repro-Cache", cache_state)
            if self.close_connection:  # tell the client, don't just drop the socket
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except _CLIENT_DISCONNECT:
            # the client hung up mid-response: its loss, not a fault —
            # drop the connection without the traceback ThreadingHTTPServer
            # would otherwise print for every disconnect under load
            self.close_connection = True

    def _read_body(self) -> bytes | None:
        if self.headers.get("Transfer-Encoding"):
            # BaseHTTPRequestHandler cannot dechunk; without a close the
            # undrained chunk lines would be parsed as the next request
            self.close_connection = True
            self._reply(
                501,
                wire.encode_error(
                    ValueError("chunked request bodies are not supported; "
                               "send a Content-Length")
                ),
            )
            return None
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length < 0:
            # a negative length would turn rfile.read() into read-to-EOF,
            # which never comes on a keep-alive connection
            self.close_connection = True  # the body was never drained
            self._reply(400, wire.encode_error(ValueError("bad Content-Length")))
            return None
        if length > MAX_BODY_BYTES:
            # replying without draining the body would desynchronize the
            # keep-alive stream (the next "request" would parse body bytes)
            self.close_connection = True
            self._reply(
                413,
                wire.encode_error(ValueError(f"request body over {MAX_BODY_BYTES} bytes")),
            )
            return None
        try:
            return self.rfile.read(length)
        except _CLIENT_DISCONNECT:
            self.close_connection = True  # hung up mid-body: nothing to answer
            return None

    # -- endpoints -----------------------------------------------------------

    def do_POST(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            if self.path == "/query":
                self._answer(body, self._compute_query)
            elif self.path == "/query-many":
                self._answer(body, self._compute_query_many)
            else:
                self._reply(404, wire.encode_error(ValueError(f"no endpoint {self.path}")))
        except ConnectionError as exc:
            # a router frontend's backend is unreachable: a gateway
            # fault, not this server's — 502 keeps the client's retry
            # logic on the transport-error path and names the backend
            self._reply(502, wire.encode_error(exc))
        except (wire.WireError, ValueError, TypeError, IndexError) as exc:
            # the client's fault: transport the exact exception class so
            # DistanceClient raises what a local execute() would have
            self._reply(400, wire.encode_error(exc))
        except Exception:  # noqa: BLE001 - the server must not die mid-request
            # internals stay off the wire, but the operator gets the
            # traceback on stderr — a silent 500 is undebuggable
            traceback.print_exc()
            self._reply(500, wire.encode_error(ValueError("internal server error")))

    def _compute_query(self, body: bytes) -> bytes:
        query = wire.decode_query(body)
        self._check_result_size([query])
        result = self.service.execute(query)
        return wire.encode_result(result, query)

    def _compute_query_many(self, body: bytes) -> bytes:
        queries = wire.decode_queries(body)
        self._check_result_size(queries)
        results = self.service.execute_many(queries)
        return wire.encode_results(results, queries)

    def _check_result_size(self, queries) -> None:
        store = getattr(self.service, "store", None)
        if store is None:
            return  # router frontend: each backend enforces its own cap
        _check_result_size(queries, store)

    def _answer(self, body: bytes, compute) -> None:
        """Serve one query/query-many body, through the cache when enabled.

        Cache keys are ``(endpoint, body bytes, store-state token)``:
        ``execute()`` is deterministic given the stored sketches (see
        :mod:`repro.serving.cache` for why replaying a release costs no
        privacy budget), and the token — row count, config digest,
        storage, generation, tombstone count — changes on any append,
        delete or generation swap, so a hit is always the byte-identical
        envelope a fresh execution would produce.  (Tombstones only grow
        within a generation and ``compact()`` clears them while bumping
        the generation, so the tuple never repeats across maintenance.)
        The token is re-checked after computing: a result that raced a
        concurrent append or a live swap is simply not cached.
        """
        cache = self.cache
        token = self._store_token() if cache is not None else None
        key = (self.path, body, token)
        if token is not None:
            blob = cache.get(key)
            if blob is not None:
                self._reply(200, blob, cache_state="hit")
                return
        blob = compute(body)
        if token is not None and self._store_token() == token:
            cache.put(key, blob)
        self._reply(200, blob, cache_state=None if token is None else "miss")

    def _store_token(self):
        store = getattr(self.service, "store", None)
        if store is None:
            return None  # a router has no cheap store-state token: no caching
        meta = store.metadata
        routing = store.routing
        return (
            len(store),
            None if meta is None else meta.config_digest,
            store.storage.name,
            store.generation,
            len(store.tombstones),
            # a routing rebuild changes answers' cost profile but also —
            # for nprobe queries — the answers themselves: new table, new token
            None if routing is None else (routing.generation, routing.n_clusters),
        )

    def do_GET(self) -> None:
        try:
            self._do_get()
        except _CLIENT_DISCONNECT:
            self.close_connection = True
        except ConnectionError as exc:
            # a router frontend probing a dead backend: gateway fault
            self._reply(502, wire.encode_error(exc))
        except Exception:  # noqa: BLE001 - same contract as do_POST
            traceback.print_exc()
            self._reply(500, wire.encode_error(ValueError("internal server error")))

    def _do_get(self) -> None:
        if self.path == "/healthz":
            payload = self._health_payload()
            self._reply(200, json.dumps(payload).encode("utf-8"))
        elif self.path == "/meta":
            self._reply(200, json.dumps(self._meta_payload()).encode("utf-8"))
        else:
            self._reply(404, wire.encode_error(ValueError(f"no endpoint {self.path}")))

    def _health_payload(self) -> dict:
        store = getattr(self.service, "store", None)
        if store is None:
            payload = dict(self.service.health())  # router aggregate
        else:
            payload = {
                "status": "ok",
                "rows": len(store),
                "live_rows": store.live_row_count,
                "shards": store.n_shards,
                "storage": store.storage.name,
                "generation": store.generation,
                "tombstones": len(store.tombstones),
                "config_digest": (
                    None if store.metadata is None else store.metadata.config_digest
                ),
                # None when the store has no (valid) routing table; lets
                # operators confirm a rebuild-routing pass took effect
                "routing_generation": (
                    None if store.routing is None else store.routing.generation
                ),
            }
        # the answering worker's pid: under --processes N the kernel
        # load-balances connections, and operators (and the smoke test)
        # can see which worker answered
        payload["pid"] = os.getpid()
        if self.cache is not None:
            payload["cache"] = self.cache.stats()
        return payload

    def _meta_payload(self) -> dict:
        store = getattr(self.service, "store", None)
        if store is None:
            return {**self.service.describe(), "router": True}
        meta = store.metadata
        # describe() supplies rows/shards plus the storage spec and
        # stored-value bytes, so operators can verify a quantised
        # deployment (and its size win) from the frontend alone
        return {
            **store.describe(),
            "policy": repr(self.service.policy),
            "metadata": None
            if meta is None
            else {
                "input_dim": meta.input_dim,
                "output_dim": meta.output_dim,
                "perturbation": meta.perturbation,
                "noise_spec": meta.noise_spec,
                "noise_second_moment": meta.noise_second_moment,
                "epsilon": meta.guarantee.epsilon,
                "delta": meta.guarantee.delta,
                "config_digest": meta.config_digest,
            },
        }


class _QuietHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that does not traceback on client disconnects."""

    daemon_threads = True

    def handle_error(self, request, client_address):
        if isinstance(sys.exc_info()[1], _CLIENT_DISCONNECT):
            return  # the client hung up between requests: routine, not a fault
        super().handle_error(request, client_address)


class SketchQueryServer:
    """An HTTP frontend over one ``execute()`` backend.

    Wraps an existing :class:`DistanceService` (any store: in-memory,
    eager-loaded or memory-mapped), a
    :class:`~repro.serving.router.RouterService`, or, via
    :meth:`from_store_dir`, a saved store directory.  ``port=0`` binds
    an ephemeral port — read the chosen one from :attr:`url` — which is
    what tests and multi-process launchers want.

    ``reuse_port=True`` sets ``SO_REUSEPORT`` before binding, so many
    server processes share one port and the kernel distributes incoming
    connections across them (the ``--processes`` launcher's mechanism).
    ``cache`` enables the LRU result-envelope cache: pass a
    :class:`~repro.serving.cache.ReleaseCache` or an entry count.

    **Live generation swap.**  A server constructed over a store
    *directory* (``from_store_dir``, or ``store_path=`` here) can follow
    that directory across maintenance: ``watch_interval=SECONDS`` polls
    the manifest on a daemon thread and, whenever its identity — the
    generation counter bumped by :func:`~repro.serving.maintenance.compact_store`,
    plus rows/shards/storage/tombstones — changes, loads the new
    generation and swaps it into the running service without a restart.
    In-flight queries finish on the snapshot they already took (the
    store-swap contract in :mod:`repro.serving.service`); the next
    request sees the new generation, and the result cache invalidates
    itself because the store token carries the generation.  A failed
    reload (e.g. a manifest read racing a publish) never takes the
    server down: the old store keeps serving and the error is parked in
    :attr:`watch_error` until a later poll succeeds.  Call
    :meth:`reload_if_changed` to force one synchronous check.

    Use :meth:`start` for a background thread (then :meth:`close`), or
    :meth:`serve_forever` to block the calling thread (the CLI path).
    Context-manager use starts on enter and closes on exit.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        reuse_port: bool = False,
        cache: ReleaseCache | int | None = None,
        store_path=None,
        mmap: bool = True,
        watch_interval: float | None = None,
    ) -> None:
        self.service = service
        if watch_interval is not None and watch_interval <= 0:
            raise ValueError(f"watch_interval must be positive, got {watch_interval}")
        if watch_interval is not None and store_path is None:
            raise ValueError(
                "watch_interval needs a store directory to watch — construct "
                "the server via from_store_dir() or pass store_path="
            )
        self._store_path = store_path
        self._mmap = mmap
        self._watch_interval = watch_interval
        self._watch_stop = threading.Event()
        self._watch_thread: threading.Thread | None = None
        self._watch_state = (
            self._manifest_state() if store_path is not None else None
        )
        #: last exception a watch poll hit, or None; the server keeps
        #: serving the old generation while this is set
        self.watch_error: Exception | None = None
        #: how many times the watcher swapped a new generation in
        self.swaps = 0
        if reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise ValueError(
                "reuse_port=True needs SO_REUSEPORT, which this platform "
                "does not provide"
            )
        if isinstance(cache, int):
            cache = ReleaseCache(max_entries=cache) if cache > 0 else None
        self.cache = cache
        self._bind_host = host
        handler = type(
            "_BoundQueryHandler", (_QueryHandler,), {"service": service, "cache": cache}
        )
        server_cls = type(
            "_BoundHTTPServer",
            (_QuietHTTPServer,),
            {
                "address_family": _address_family(host),
                "allow_reuse_port": bool(reuse_port),
            },
        )
        self._httpd = server_cls((host, port), handler)
        self._thread: threading.Thread | None = None
        self._serving = False

    @classmethod
    def from_store_dir(
        cls,
        path,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        mmap: bool = True,
        policy: ExecutionPolicy | None = None,
        reuse_port: bool = False,
        cache: ReleaseCache | int | None = None,
        watch_interval: float | None = None,
    ) -> "SketchQueryServer":
        """Serve a directory saved by :meth:`ShardedSketchStore.save`.

        ``mmap=True`` (default) attaches shards lazily, so multiple
        server processes over one directory share the OS page cache.
        ``watch_interval=SECONDS`` keeps following the directory across
        maintenance: new generations are hot-swapped in without a
        restart (see the class docstring).
        """
        store = ShardedSketchStore.load(path, mmap=mmap)
        return cls(
            DistanceService(store, policy=policy),
            host=host,
            port=port,
            reuse_port=reuse_port,
            cache=cache,
            store_path=path,
            mmap=mmap,
            watch_interval=watch_interval,
        )

    # -- manifest watching / live swap ---------------------------------------

    def _manifest_state(self) -> tuple:
        """The store directory's identity, as cheap-to-read manifest facts.

        Any maintenance step changes at least one component: ``delete``
        + re-save grows the tombstone list, ``compact_store`` bumps the
        generation (and re-points ``shards_dir``), a tier demotion
        changes ``storage``, appends change ``n_rows``.  Reading the
        manifest is one small JSON file — cheap enough to poll.
        """
        manifest = read_manifest(self._store_path)
        return (
            int(manifest.get("generation", 0)),
            manifest["n_rows"],
            manifest["n_shards"],
            manifest.get("storage", "f8"),
            manifest.get("shards_dir", ""),
            tuple(manifest.get("tombstones", ())),
            # a rebuild-routing pass rewrites only this entry (same
            # generation semantics as a compact, new routing blob)
            tuple(sorted((manifest.get("routing") or {}).items())),
        )

    def reload_if_changed(self) -> bool:
        """Poll the manifest once; swap the new generation in if it moved.

        Returns True when a swap happened.  The old store object is
        released to garbage collection only — queries that already
        snapshotted it finish on its (still-mapped) shards, exactly the
        snapshot isolation :meth:`ShardedSketchStore.snapshot` promises.
        """
        if self._store_path is None:
            raise ValueError("this server was not given a store directory to watch")
        state = self._manifest_state()
        if state == self._watch_state:
            return False
        store = ShardedSketchStore.load(self._store_path, mmap=self._mmap)
        self.service.swap_store(store)
        self._watch_state = state
        self.swaps += 1
        return True

    def _watch_loop(self) -> None:
        while not self._watch_stop.wait(self._watch_interval):
            try:
                self.reload_if_changed()
                self.watch_error = None
            except Exception as exc:  # noqa: BLE001 - keep serving the old gen
                # a poll racing a publish (or a half-written manifest from
                # a crashed compactor) must not kill serving: park the
                # error for operators and try again next interval
                self.watch_error = exc

    @property
    def host(self) -> str:
        """The advertised (connectable) host — never a wildcard address."""
        return _advertised_host(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """A connectable URL: wildcard binds advertise loopback, IPv6 brackets."""
        return f"http://{_format_host(self.host)}:{self.port}"

    def _start_watcher(self) -> None:
        if self._watch_interval is not None and self._watch_thread is None:
            self._watch_stop.clear()
            self._watch_thread = threading.Thread(
                target=self._watch_loop, name="repro-store-watcher", daemon=True
            )
            self._watch_thread.start()

    def start(self) -> "SketchQueryServer":
        """Serve on a daemon thread; returns ``self`` for chaining."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="repro-query-server", daemon=True
            )
            self._thread.start()
        self._start_watcher()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        self._serving = True
        self._start_watcher()
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
        finally:
            self.close()

    def close(self) -> None:
        """Stop accepting connections and release the service's pool.

        Safe on a server that was never started: ``BaseServer.shutdown``
        blocks on an event only a ``serve_forever`` loop ever sets, so
        it is skipped unless a loop was launched.
        """
        if self._watch_thread is not None:
            self._watch_stop.set()
            self._watch_thread.join()
            self._watch_thread = None
        if self._serving:
            self._httpd.shutdown()
            self._serving = False
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.service.close()

    def __enter__(self) -> "SketchQueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- the multi-process launcher ------------------------------------------------


def _serve_worker(
    store, host, port, mmap, workers, cache_entries, watch, ready
) -> None:
    """One ``--processes`` worker: bind the shared port, signal, serve."""
    policy = None
    if workers is not None:
        policy = dataclasses.replace(ExecutionPolicy.from_env(), workers=workers)
    server = SketchQueryServer.from_store_dir(
        store,
        host=host,
        port=port,
        mmap=mmap,
        policy=policy,
        reuse_port=True,
        cache=cache_entries,
        watch_interval=watch or None,
    )
    ready.put(os.getpid())
    server.serve_forever()


def _serve_multiprocess(args, policy_display: str) -> None:
    """Launch ``args.processes`` SO_REUSEPORT workers over one port.

    The parent claims the port first (resolving ``--port 0`` to a
    concrete ephemeral port all workers can share), spawns the workers,
    waits until every one is accepting, and only then prints the
    machine-parsed URL line — a launcher that connects immediately
    never races a worker's bind.  Workers memory-map the same store
    directory, so the OS page cache is shared across all of them.
    """
    if not hasattr(socket, "SO_REUSEPORT"):
        raise SystemExit(
            "--processes > 1 needs SO_REUSEPORT, which this platform "
            "does not provide"
        )
    family = _address_family(args.host)
    placeholder = socket.socket(family, socket.SOCK_STREAM)
    placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    placeholder.bind((args.host, args.port))
    port = placeholder.getsockname()[1]

    ctx = multiprocessing.get_context("spawn")  # no thread/fork hazards
    ready = ctx.Queue()
    workers = [
        ctx.Process(
            target=_serve_worker,
            args=(
                args.store,
                args.host,
                port,
                not args.eager,
                args.workers,
                args.cache,
                args.watch,
                ready,
            ),
            name=f"repro-query-worker-{i}",
        )
        for i in range(args.processes)
    ]
    for worker in workers:
        worker.start()

    def _terminate(signum=None, frame=None):
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    try:
        for _ in workers:
            try:
                ready.get(timeout=120)
            except queue.Empty:
                raise SystemExit("a server worker failed to start within 120s")
        placeholder.close()  # the workers hold the port from here on

        store = ShardedSketchStore.load(args.store, mmap=True)
        url = f"http://{_format_host(_advertised_host(args.host))}:{port}"
        print(
            f"serving {len(store)} rows in {store.n_shards} shards "
            f"({args.processes} processes, policy {policy_display}) at {url}",
            flush=True,
        )
        for worker in workers:
            worker.join()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
        for worker in workers:
            worker.join()


def main(argv=None) -> None:
    """CLI: ``python -m repro.serving.server --store DIR [--port N]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.server",
        description="Serve distance queries over a saved sketch store via HTTP.",
    )
    parser.add_argument("--store", required=True, help="store directory (from save())")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard-parallel query workers (default: REPRO_SERVING_WORKERS or serial)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="SO_REUSEPORT server processes sharing one port and the mmap "
        "page cache (default 1: serve in this process)",
    )
    parser.add_argument(
        "--cache",
        type=int,
        default=0,
        metavar="ENTRIES",
        help="LRU result-envelope cache entries per process (0 disables; "
        "safe — releases are deterministic, so a cache hit is byte-identical "
        "to recomputing and spends no extra privacy budget)",
    )
    parser.add_argument(
        "--eager",
        action="store_true",
        help="read shards into RAM up front instead of memory-mapping lazily",
    )
    parser.add_argument(
        "--watch",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="poll the store manifest every SECONDS and hot-swap new "
        "generations in without a restart (0 disables; in-flight queries "
        "finish on the snapshot they started with)",
    )
    args = parser.parse_args(argv)
    if args.processes < 1:
        parser.error(f"--processes must be >= 1, got {args.processes}")
    if args.cache < 0:
        parser.error(f"--cache must be >= 0, got {args.cache}")
    if args.watch < 0:
        parser.error(f"--watch must be >= 0, got {args.watch}")
    # layer the flag over the environment policy so REPRO_SERVING_PREFILTER
    # keeps working (and keeps failing loudly on garbage) alongside --workers
    policy = None
    if args.workers is not None:
        policy = dataclasses.replace(ExecutionPolicy.from_env(), workers=args.workers)
    if args.processes > 1:
        display = repr(policy if policy is not None else ExecutionPolicy.from_env())
        _serve_multiprocess(args, display)
        return
    server = SketchQueryServer.from_store_dir(
        args.store,
        host=args.host,
        port=args.port,
        mmap=not args.eager,
        policy=policy,
        cache=args.cache,
        watch_interval=args.watch or None,
    )
    store = server.service.store
    # the URL line is machine-readable: launchers (and the smoke test)
    # parse it to discover an ephemeral port
    print(
        f"serving {len(store)} rows in {store.n_shards} shards "
        f"(policy {server.service.policy!r}) at {server.url}",
        flush=True,
    )
    server.serve_forever()


if __name__ == "__main__":
    main()
