"""Network query frontend: serve a saved sketch store over HTTP.

:class:`SketchQueryServer` exposes one
:class:`~repro.serving.service.DistanceService` over plain HTTP using
only the standard library (``http.server.ThreadingHTTPServer`` — one
thread per connection; the heavy lifting inside a query is BLAS, which
releases the GIL, and the service's own
:class:`~repro.serving.execution.ExecutionPolicy` fans shard blocks
across its worker pool independently of connection threads).

Endpoints (all bodies are :mod:`repro.serving.wire` envelopes):

=====================  =======================================================
``POST /query``        one query envelope in, one result envelope out
``POST /query-many``   a JSON array of query envelopes in, results out
``GET /healthz``       liveness + store shape: rows, shards, config digest
``GET /meta``          the store's public metadata header (no values)
=====================  =======================================================

Client-side errors — a malformed envelope, an incompatible query, an
empty store — come back as status 400 with an *error envelope* carrying
the exception class and message, so
:class:`~repro.serving.client.DistanceClient` re-raises exactly what a
local ``execute()`` would have raised.  Unexpected server faults are
500 with a generic message (internals never leak to the wire).

Scale-out is process-level and free: the store directory is opened with
``mmap=True`` by default, so ``N`` server processes on ``N`` ports map
the *same* shard files read-only and share page cache — start as many
as the machine has cores and put any HTTP load balancer in front.

Run from the command line::

    python -m repro.serving.server --store path/to/store --port 8790

and point a :class:`~repro.serving.client.DistanceClient` at the
printed URL.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import threading
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serving import wire
from repro.serving.execution import ExecutionPolicy
from repro.serving.queries import CrossQuery, PairwiseQuery, TopKQuery
from repro.serving.service import DistanceService
from repro.serving.store import ShardedSketchStore

#: Default port; chosen out of the way of common dev servers.
DEFAULT_PORT = 8790

#: Request bodies above this size are rejected with 413 — a query is a
#: handful of sketch rows, not a bulk upload.  (256 MiB admits ~500k
#: base64-encoded rows of a k=256 sketch, far beyond any sane query.)
MAX_BODY_BYTES = 256 * 1024 * 1024

#: Matrix results above this many float64 cells (~1 GiB) are refused:
#: a bytes-cheap request must not be able to force a quadratically
#: larger allocation on the server (``PairwiseQuery(indices=(0,) * 1M)``
#: is a ~3 MB body demanding an 8 TB response).  Local execution is
#: deliberately uncapped — this is a network-frontend resource policy,
#: and capped clients can chunk their query instead.
MAX_RESULT_CELLS = 1 << 27


def _query_rows(release) -> int:
    values = getattr(release, "values", None)
    if values is None:
        return 0  # malformed; execute() will reject it properly
    return 1 if getattr(values, "ndim", 1) == 1 else values.shape[0]


def _result_cells(query, store) -> int:
    """Upper bound on the result entries a query makes the server hold."""
    if isinstance(query, PairwiseQuery):
        return len(query.indices) ** 2
    if isinstance(query, CrossQuery):
        return _query_rows(query.queries) * len(store)
    if isinstance(query, TopKQuery):
        # one (label, estimate) pair per query row per winner
        return _query_rows(query.queries) * min(query.k, len(store))
    # norms return one entry per stored row; a radius query's worst case
    # (radius_sq=inf) hits every stored row — neither is free, and a
    # /query-many batch of them must not slip under the cap as zero
    return len(store)


def _check_result_size(queries, store) -> None:
    """Refuse a request whose *combined* results exceed the cell cap.

    Summed across a ``/query-many`` batch — ``execute_many`` holds every
    result until the batch is encoded, so the batch is the allocation
    unit, not the individual query.
    """
    cells = sum(_result_cells(query, store) for query in queries)
    if cells > MAX_RESULT_CELLS:
        raise ValueError(
            f"request would produce {cells} result cells, over this server's "
            f"{MAX_RESULT_CELLS}-cell limit — split it into smaller queries"
        )


class _QueryHandler(BaseHTTPRequestHandler):
    """One HTTP request against the wrapped service (set by subclass)."""

    service: DistanceService  # injected via the per-server subclass
    server_version = "repro-sketch-query/1"
    #: per-connection socket timeout — a client that stalls mid-body must
    #: not pin a handler thread (and its pending read buffer) forever
    timeout = 60
    # HTTP/1.1 so keep-alive-capable clients (http.client, browsers, load
    # balancers) can reuse connections; the shipped DistanceClient opens
    # one connection per request and amortises via /query-many instead
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # queries are high-rate; logging is the load balancer's job

    def _reply(self, status: int, body: bytes, content_type="application/json"):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:  # tell the client, don't just drop the socket
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes | None:
        if self.headers.get("Transfer-Encoding"):
            # BaseHTTPRequestHandler cannot dechunk; without a close the
            # undrained chunk lines would be parsed as the next request
            self.close_connection = True
            self._reply(
                501,
                wire.encode_error(
                    ValueError("chunked request bodies are not supported; "
                               "send a Content-Length")
                ),
            )
            return None
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length < 0:
            # a negative length would turn rfile.read() into read-to-EOF,
            # which never comes on a keep-alive connection
            self.close_connection = True  # the body was never drained
            self._reply(400, wire.encode_error(ValueError("bad Content-Length")))
            return None
        if length > MAX_BODY_BYTES:
            # replying without draining the body would desynchronize the
            # keep-alive stream (the next "request" would parse body bytes)
            self.close_connection = True
            self._reply(
                413,
                wire.encode_error(ValueError(f"request body over {MAX_BODY_BYTES} bytes")),
            )
            return None
        return self.rfile.read(length)

    # -- endpoints -----------------------------------------------------------

    def do_POST(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            if self.path == "/query":
                query = wire.decode_query(body)
                _check_result_size([query], self.service.store)
                result = self.service.execute(query)
                self._reply(200, wire.encode_result(result, query))
            elif self.path == "/query-many":
                queries = wire.decode_queries(body)
                _check_result_size(queries, self.service.store)
                results = self.service.execute_many(queries)
                self._reply(200, wire.encode_results(results, queries))
            else:
                self._reply(404, wire.encode_error(ValueError(f"no endpoint {self.path}")))
        except (wire.WireError, ValueError, TypeError, IndexError) as exc:
            # the client's fault: transport the exact exception class so
            # DistanceClient raises what a local execute() would have
            self._reply(400, wire.encode_error(exc))
        except Exception:  # noqa: BLE001 - the server must not die mid-request
            # internals stay off the wire, but the operator gets the
            # traceback on stderr — a silent 500 is undebuggable
            traceback.print_exc()
            self._reply(500, wire.encode_error(ValueError("internal server error")))

    def do_GET(self) -> None:
        try:
            self._do_get()
        except Exception:  # noqa: BLE001 - same contract as do_POST
            traceback.print_exc()
            self._reply(500, wire.encode_error(ValueError("internal server error")))

    def _do_get(self) -> None:
        if self.path == "/healthz":
            store = self.service.store
            body = json.dumps(
                {
                    "status": "ok",
                    "rows": len(store),
                    "shards": store.n_shards,
                    "storage": store.storage.name,
                    "config_digest": (
                        None if store.metadata is None else store.metadata.config_digest
                    ),
                }
            ).encode("utf-8")
            self._reply(200, body)
        elif self.path == "/meta":
            store = self.service.store
            meta = store.metadata
            # describe() supplies rows/shards plus the storage spec and
            # stored-value bytes, so operators can verify a quantised
            # deployment (and its size win) from the frontend alone
            body = json.dumps(
                {
                    **store.describe(),
                    "policy": repr(self.service.policy),
                    "metadata": None
                    if meta is None
                    else {
                        "input_dim": meta.input_dim,
                        "output_dim": meta.output_dim,
                        "perturbation": meta.perturbation,
                        "noise_spec": meta.noise_spec,
                        "noise_second_moment": meta.noise_second_moment,
                        "epsilon": meta.guarantee.epsilon,
                        "delta": meta.guarantee.delta,
                        "config_digest": meta.config_digest,
                    },
                }
            ).encode("utf-8")
            self._reply(200, body)
        else:
            self._reply(404, wire.encode_error(ValueError(f"no endpoint {self.path}")))


class SketchQueryServer:
    """An HTTP frontend over one :class:`DistanceService`.

    Wraps an existing service (any store: in-memory, eager-loaded or
    memory-mapped) or, via :meth:`from_store_dir`, a saved store
    directory.  ``port=0`` binds an ephemeral port — read the chosen
    one from :attr:`url` — which is what tests and multi-process
    launchers want.

    Use :meth:`start` for a background thread (then :meth:`close`), or
    :meth:`serve_forever` to block the calling thread (the CLI path).
    Context-manager use starts on enter and closes on exit.
    """

    def __init__(
        self,
        service: DistanceService,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
    ) -> None:
        self.service = service
        handler = type("_BoundQueryHandler", (_QueryHandler,), {"service": service})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._serving = False

    @classmethod
    def from_store_dir(
        cls,
        path,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        mmap: bool = True,
        policy: ExecutionPolicy | None = None,
    ) -> "SketchQueryServer":
        """Serve a directory saved by :meth:`ShardedSketchStore.save`.

        ``mmap=True`` (default) attaches shards lazily, so multiple
        server processes over one directory share the OS page cache.
        """
        store = ShardedSketchStore.load(path, mmap=mmap)
        return cls(DistanceService(store, policy=policy), host=host, port=port)

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "SketchQueryServer":
        """Serve on a daemon thread; returns ``self`` for chaining."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="repro-query-server", daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        self._serving = True
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
        finally:
            self.close()

    def close(self) -> None:
        """Stop accepting connections and release the service's pool.

        Safe on a server that was never started: ``BaseServer.shutdown``
        blocks on an event only a ``serve_forever`` loop ever sets, so
        it is skipped unless a loop was launched.
        """
        if self._serving:
            self._httpd.shutdown()
            self._serving = False
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.service.close()

    def __enter__(self) -> "SketchQueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def main(argv=None) -> None:
    """CLI: ``python -m repro.serving.server --store DIR [--port N]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.server",
        description="Serve distance queries over a saved sketch store via HTTP.",
    )
    parser.add_argument("--store", required=True, help="store directory (from save())")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard-parallel query workers (default: REPRO_SERVING_WORKERS or serial)",
    )
    parser.add_argument(
        "--eager",
        action="store_true",
        help="read shards into RAM up front instead of memory-mapping lazily",
    )
    args = parser.parse_args(argv)
    # layer the flag over the environment policy so REPRO_SERVING_PREFILTER
    # keeps working (and keeps failing loudly on garbage) alongside --workers
    policy = None
    if args.workers is not None:
        policy = dataclasses.replace(ExecutionPolicy.from_env(), workers=args.workers)
    server = SketchQueryServer.from_store_dir(
        args.store, host=args.host, port=args.port, mmap=not args.eager, policy=policy
    )
    store = server.service.store
    # the URL line is machine-readable: launchers (and the smoke test)
    # parse it to discover an ephemeral port
    print(
        f"serving {len(store)} rows in {store.n_shards} shards "
        f"(policy {server.service.policy!r}) at {server.url}",
        flush=True,
    )
    server.serve_forever()


if __name__ == "__main__":
    main()
