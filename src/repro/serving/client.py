"""HTTP client speaking the same ``execute()`` protocol as the local service.

:class:`DistanceClient` is the remote counterpart of
:class:`~repro.serving.service.DistanceService`: it implements
``execute(query)`` / ``execute_many(queries)`` over the typed query
algebra of :mod:`repro.serving.queries`, so code written against the
protocol runs unchanged against a local store or a
:class:`~repro.serving.server.SketchQueryServer` across the network —
payloads are bit-identical (the wire codec moves float64 exactly) and
``QueryResult.stats`` carries the *server-side* counters, so shard
pruning stays observable remotely.

Error behaviour matches local execution: an incompatible query, an
empty store or a malformed parameter raises the same exception class a
local ``execute()`` raises (the server transports it in an error
envelope).  Transport-level failures — refused connection, dead server
— raise :class:`ConnectionError`.

Only the standard library is used (``urllib.request`` — one connection
per request; pooled/async transports are future work, see ROADMAP), so
there is nothing to install on the analyst side.  Amortise transport
cost with :meth:`DistanceClient.execute_many`, which answers a whole
sequence of queries in a single round trip.
"""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request

from repro.serving import wire
from repro.serving.queries import QueryResult


class DistanceClient:
    """Execute typed distance queries against a remote sketch store.

    Parameters
    ----------
    base_url:
        The server root, e.g. ``"http://127.0.0.1:8790"`` (the URL a
        :class:`~repro.serving.server.SketchQueryServer` prints).
    timeout:
        Per-request timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- the execute() protocol ----------------------------------------------

    def execute(self, query) -> QueryResult:
        """Answer one typed query on the server; local-identical payloads."""
        blob = self._post("/query", wire.encode_query(query))
        return wire.decode_result(blob)

    def execute_many(self, queries) -> list[QueryResult]:
        """Answer a sequence of queries in one round trip, in order."""
        queries = list(queries)
        if not queries:
            return []
        blob = self._post("/query-many", wire.encode_queries(queries))
        results = wire.decode_results(blob)
        if len(results) != len(queries):
            raise wire.WireError(
                f"server answered {len(results)} results for {len(queries)} queries"
            )
        return results

    # -- introspection -------------------------------------------------------

    def health(self) -> dict:
        """The server's ``/healthz`` payload (rows, shards, digest)."""
        return json.loads(self._get("/healthz").decode("utf-8"))

    def meta(self) -> dict:
        """The server's ``/meta`` payload (store metadata, policy)."""
        return json.loads(self._get("/meta").decode("utf-8"))

    def __len__(self) -> int:
        return int(self.health()["rows"])

    def close(self) -> None:
        """Symmetry with :class:`DistanceService`; nothing is pooled."""

    def __enter__(self) -> "DistanceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport -----------------------------------------------------------

    def _post(self, path: str, body: bytes) -> bytes:
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._send(request)

    def _get(self, path: str) -> bytes:
        request = urllib.request.Request(self.base_url + path, method="GET")
        return self._send(request)

    def _send(self, request) -> bytes:
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            if exc.code >= 500:
                # a server fault, not a bad query: surface it as a
                # transport-class error so retry logic treats it like a
                # dead server rather than a permanently-invalid request —
                # but keep the server's message when it sent one
                try:
                    detail = f": {wire.decode_error(body)}"
                except wire.WireError:
                    detail = ""
                raise ConnectionError(
                    f"sketch query server at {self.base_url} failed with "
                    f"HTTP {exc.code}{detail}"
                ) from exc
            try:
                error = wire.decode_error(body)
            except wire.WireError:
                raise ConnectionError(
                    f"server returned HTTP {exc.code} with a non-wire body"
                ) from exc
            raise error from None  # the exception a local execute() would raise
        except urllib.error.URLError as exc:
            raise ConnectionError(
                f"cannot reach sketch query server at {self.base_url}: {exc.reason}"
            ) from exc
        except (http.client.HTTPException, OSError) as exc:
            # read timeouts, truncated bodies, resets mid-response — all
            # transport failures, all promised to surface as ConnectionError
            raise ConnectionError(
                f"transport failure talking to {self.base_url}: {exc!r}"
            ) from exc
