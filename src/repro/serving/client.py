"""HTTP client speaking the same ``execute()`` protocol as the local service.

:class:`DistanceClient` is the remote counterpart of
:class:`~repro.serving.service.DistanceService`: it implements
``execute(query)`` / ``execute_many(queries)`` over the typed query
algebra of :mod:`repro.serving.queries`, so code written against the
protocol runs unchanged against a local store or a
:class:`~repro.serving.server.SketchQueryServer` across the network —
payloads are bit-identical (the wire codec moves float64 exactly) and
``QueryResult.stats`` carries the *server-side* counters, so shard
pruning stays observable remotely.

The transport is a **connection pool** over :mod:`http.client`: the
server speaks HTTP/1.1 keep-alive, so requests reuse established TCP
connections instead of paying a connect (plus slow-start) per query —
the difference between ~hundreds and ~thousands of queries per second
on the loopback, and far more across a real network.  The pool is
thread-safe: concurrent callers check out distinct connections, and up
to ``pool_size`` idle connections are retained for reuse.  Transport
failures (a stale keep-alive connection the server timed out, a reset,
a refused connect) are retried up to ``retries`` times on a *fresh*
connection — safe, because every query is a deterministic read: the
server derives results purely from already-released sketches, so a
retried request returns byte-identical data and spends no privacy
budget (see :mod:`repro.serving.cache` for the argument).

Error behaviour matches local execution: an incompatible query, an
empty store or a malformed parameter raises the same exception class a
local ``execute()`` raises (the server transports it in an error
envelope).  Transport-level failures — refused connection, dead server,
retries exhausted — and HTTP 5xx server faults raise
:class:`ConnectionError`.

Only the standard library is used, so there is nothing to install on
the analyst side.  Amortise per-request overhead further with
:meth:`DistanceClient.execute_many`, which answers a whole sequence of
queries in a single round trip.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import urllib.parse

from repro.serving import wire
from repro.serving.queries import QueryResult


class DistanceClient:
    """Execute typed distance queries against a remote sketch store.

    Parameters
    ----------
    base_url:
        The server root, e.g. ``"http://127.0.0.1:8790"`` (the URL a
        :class:`~repro.serving.server.SketchQueryServer` prints).
        IPv6 hosts use the bracketed form, ``"http://[::1]:8790"``.
    timeout:
        Per-request socket timeout in seconds.
    pool_size:
        Maximum idle keep-alive connections retained for reuse.
        Concurrent requests beyond the idle supply open extra
        connections freely; only the *idle* pool is bounded.  ``0``
        disables reuse entirely (every request opens and closes its
        own connection — the pre-pool behaviour, kept for A/B
        measurement; ``benchmarks/bench_load.py`` quantifies the gap).
    retries:
        How many times a request is retried on a **transport** failure
        (refused/reset/stale connection, timeout) before raising
        ``ConnectionError``.  HTTP-level errors are never retried: a
        4xx re-raises the server's exception immediately, and a 5xx
        raises ``ConnectionError`` immediately so callers distinguish
        a faulting server from an unreachable one.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        *,
        pool_size: int = 8,
        retries: int = 2,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        if pool_size < 0:
            raise ValueError(f"pool_size must be >= 0, got {pool_size}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.pool_size = pool_size
        self.retries = retries
        split = urllib.parse.urlsplit(self.base_url)
        if split.scheme != "http":
            raise ValueError(
                f"base_url must be an http:// URL, got {base_url!r}"
            )
        if not split.hostname:
            raise ValueError(f"base_url {base_url!r} has no host")
        self._host = split.hostname
        self._port = split.port if split.port is not None else 80
        self._prefix = split.path.rstrip("/")
        self._lock = threading.Lock()
        self._idle: list[http.client.HTTPConnection] = []
        self._closed = False
        #: transport counters (monotonic): connections actually opened,
        #: requests attempted, and retries spent — pool-reuse and retry
        #: behaviour observable without packet captures
        self.connections_opened = 0
        self.requests_sent = 0
        self.retries_used = 0

    # -- the execute() protocol ----------------------------------------------

    def execute(self, query) -> QueryResult:
        """Answer one typed query on the server; local-identical payloads."""
        blob = self._post("/query", wire.encode_query(query))
        return wire.decode_result(blob)

    def execute_many(self, queries) -> list[QueryResult]:
        """Answer a sequence of queries in one round trip, in order."""
        queries = list(queries)
        if not queries:
            return []
        blob = self._post("/query-many", wire.encode_queries(queries))
        results = wire.decode_results(blob)
        if len(results) != len(queries):
            raise wire.WireError(
                f"server answered {len(results)} results for {len(queries)} queries"
            )
        return results

    # -- introspection -------------------------------------------------------

    def health(self) -> dict:
        """The server's ``/healthz`` payload (rows, shards, digest)."""
        return json.loads(self._get("/healthz").decode("utf-8"))

    def meta(self) -> dict:
        """The server's ``/meta`` payload (store metadata, policy)."""
        return json.loads(self._get("/meta").decode("utf-8"))

    def __len__(self) -> int:
        return int(self.health()["rows"])

    def close(self) -> None:
        """Close every pooled connection; in-flight requests finish theirs."""
        with self._lock:
            idle, self._idle = self._idle, []
            self._closed = True
        for connection in idle:
            connection.close()

    def __enter__(self) -> "DistanceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- connection pool -----------------------------------------------------

    def _checkout(self) -> http.client.HTTPConnection:
        with self._lock:
            if self._idle:
                return self._idle.pop()
            self.connections_opened += 1
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout
        )
        connection.connect()
        # a small JSON envelope must not sit in Nagle's buffer waiting
        # for the previous exchange's delayed ACK — on a reused
        # keep-alive connection that stall would make pooling *slower*
        # than reconnecting (a close flushes; a live connection waits)
        connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return connection

    def _checkin(self, connection: http.client.HTTPConnection) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self.pool_size:
                self._idle.append(connection)
                return
        connection.close()

    # -- transport -----------------------------------------------------------

    def _post(self, path: str, body: bytes) -> bytes:
        return self._send("POST", path, body)

    def _get(self, path: str) -> bytes:
        return self._send("GET", path, None)

    def _send(self, method: str, path: str, body: bytes | None) -> bytes:
        url = self._prefix + path
        headers = {"Content-Type": "application/json"}
        if self.pool_size == 0:
            headers["Connection"] = "close"
        last_exc: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                with self._lock:
                    self.retries_used += 1
            connection = None
            try:
                connection = self._checkout()  # may connect: inside the retry
                with self._lock:
                    self.requests_sent += 1
                connection.request(method, url, body=body, headers=headers)
                response = connection.getresponse()
                status = response.status
                blob = response.read()
                reusable = not response.will_close
            except (http.client.HTTPException, OSError) as exc:
                # a transport failure: the connection is in an unknown
                # state, so drop it and retry on a fresh one — queries
                # are deterministic reads, so a retry that re-executes
                # a request the server already answered is harmless
                if connection is not None:
                    connection.close()
                last_exc = exc
                continue
            if reusable and self.pool_size > 0:
                self._checkin(connection)
            else:
                connection.close()
            return self._handle_status(status, blob)
        raise ConnectionError(
            f"cannot reach sketch query server at {self.base_url} "
            f"after {self.retries + 1} attempt(s): {last_exc!r}"
        ) from last_exc

    def _handle_status(self, status: int, blob: bytes) -> bytes:
        if status == 200:
            return blob
        if status >= 500:
            # a server fault, not a bad query: surface it as a
            # transport-class error so callers treat it like a dead
            # server rather than a permanently-invalid request — but
            # keep the server's message when it sent one (a 502 from a
            # router frontend names the unreachable backend)
            try:
                detail = f": {wire.decode_error(blob)}"
            except wire.WireError:
                detail = ""
            raise ConnectionError(
                f"sketch query server at {self.base_url} failed with "
                f"HTTP {status}{detail}"
            )
        try:
            error = wire.decode_error(blob)
        except wire.WireError as exc:
            raise ConnectionError(
                f"server returned HTTP {status} with a non-wire body"
            ) from exc
        raise error from None  # the exception a local execute() would raise
