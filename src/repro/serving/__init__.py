"""Serving layer: sharded storage, a typed query plane, and a network frontend.

The paper's Section 2 point is that *anyone* can estimate distances
from published sketches; this package is the infrastructure for doing
that at scale.  :class:`ShardedSketchStore` accumulates released rows
into preallocated shards (amortised O(1) appends, cached per-shard
norms and norm bounds, atomic binary persistence, lazy memory-mapped
loading for stores larger than RAM, compaction and merge tooling),
at a selectable storage precision (:class:`StorageSpec`: ``f8`` /
``f4`` / ``f2`` / scalar-quantised ``int8`` — 2-8x smaller shards and
files behind the unchanged :class:`ShardView` interface, within the
documented error envelope of :mod:`repro.theory.quantisation`; build
full-precision, then ``compact(storage="f4")`` to shrink).
Above it sits one protocol:

* :mod:`repro.serving.queries` — the typed query algebra
  (:class:`TopKQuery`, :class:`RadiusQuery`, :class:`CrossQuery`,
  :class:`PairwiseQuery`, :class:`NormsQuery`), answered as
  :class:`QueryResult` objects carrying payload + :class:`QueryStats`;
* :class:`DistanceService` — the local backend:
  ``execute(query)`` / ``execute_many(queries)`` stream the shards
  through the vectorised estimators, serially or across a thread pool
  (:class:`ExecutionPolicy`);
* :mod:`repro.serving.wire` — versioned JSON envelopes for queries,
  results and errors (sketch payloads ride as the v2 binary container,
  bit-exact; typed labels survive);
* :class:`SketchQueryServer` / :class:`DistanceClient` — a stdlib-only
  HTTP frontend over a saved store (memory-mapped, so N worker
  processes share the same shard files) and the client that implements
  the *same* ``execute()`` protocol, making local and remote backends
  interchangeable.  The client pools keep-alive connections and
  retries transport failures on a fresh connection; the server can run
  as ``--processes N`` ``SO_REUSEPORT`` workers over one port and one
  mmapped store directory;
* :class:`RouterService` — scatter-gather over an ordered sequence of
  ``execute()`` backends that partition one logical store, merging
  per-backend partials with the same shard-ordered reduction the local
  engine uses, so ``client -> router -> N store servers`` answers
  match a single-store run (see :mod:`repro.serving.router` for the
  one clamped-at-zero tie caveat);
* :class:`ReleaseCache` — a bounded LRU of result envelopes the server
  consults before recomputing.  Caching is *privacy-free*: a release
  is deterministic post-processing of already-privatised sketches
  (noise is sampled once, when a sketch is released, and its budget
  spent then), so re-serving the byte-identical envelope for an
  identical query observes nothing new and costs no extra budget —
  see :mod:`repro.serving.cache` for the full argument;
* :mod:`repro.serving.maintenance` — LSM-style streaming store
  upkeep: :func:`compact_store` re-encodes a saved directory
  disk-to-disk in bounded row blocks (peak RSS stays O(block) however
  large the store), publishing each rewrite as a new numbered
  *generation* that readers — and a ``watch_interval`` server — pick up
  atomically; ``delete()`` tombstones plus a :class:`MaintenancePolicy`
  run by :class:`StoreMaintainer` automate the hot-write-tier →
  cold-read-tier (``f8`` → ``f4``/``int8``) lifecycle.  All of it is
  post-processing of already-released sketches: zero extra privacy
  budget, and deletion never refunds any (see :mod:`repro.serving.store`
  for the tombstone DP semantics).

**Concurrency contract.**  One writer at a time may append to a store;
any number of readers may query it concurrently.  Every query freezes a
store snapshot first and therefore sees a *consistent prefix* of the
rows (appends publish rows and norm caches before sizes, so a snapshot
never exposes a partially written row).  Queries never block appends
and appends never block queries.  ``save``/``load``/``compact``/
``merge`` are writer-side operations: run them from the writer, not
concurrently with another writer.  Saving over a directory counts as
writing every store handle that was mmap-loaded from it — such readers
must re-``load`` afterwards (see :meth:`ShardedSketchStore.save`).

**Prefilter guarantee.**  The norm-bound prefilter (on by default, see
:class:`ExecutionPolicy`) skips a shard only when the reverse triangle
inequality over the shard's cached norm range — minus a safety slack
that dominates floating-point rounding — proves every distance in the
shard is strictly worse than the current threshold.  Query results with
the prefilter on are identical to results with it off, ties included;
it is a work-skipping optimisation, never an approximation.  Skipped
shards are visible in ``QueryResult.stats.shards_pruned``.

**Centroid routing.**  ``compact(routing=True)`` clusters the live rows
(seeded, deterministic k-means) so each sealed shard holds one cluster,
and persists per-shard centroids and covering radii in the manifest
(:mod:`repro.serving.routing`).  On such stores the query plane adds a
routing stage *ahead of* the prefilter: in exact mode the centroid-ball
bound ``max(0, ||q - c|| - r)`` skips provably hopeless shards under
the same slack discipline as the prefilter — bit-identical results,
ties included; per-query :class:`RoutingSpec(nprobe=N) <RoutingSpec>`
instead visits only the ``N`` nearest-centroid shards, an explicit
recall/speed trade reported in ``QueryStats.shards_routed``.  Both are
post-processing of released sketches: no extra privacy budget.

**Deprecation policy.**  The pre-query-plane ``DistanceService``
methods (``top_k``, ``top_k_batch``, ``radius``, ``cross``,
``pairwise_submatrix``) are shims over ``execute()``: bit-identical
results plus a ``DeprecationWarning``.  They remain for at least two
further releases; new code should build typed queries.  The wire format
and the binary container are versioned independently and reject
unknown versions up front.

The analyst-side index :class:`~repro.core.knn.PrivateNeighborIndex`
delegates to this layer, and a :class:`~repro.core.protocol.SketchingSession`
exposes it via :meth:`~repro.core.protocol.SketchingSession.serve`.
"""

from repro.serving.cache import ReleaseCache
from repro.serving.client import DistanceClient
from repro.serving.execution import ExecutionPolicy, pin_blas_threads
from repro.serving.maintenance import (
    MaintenancePolicy,
    StoreMaintainer,
    compact_store,
    merge_stores,
)
from repro.serving.queries import (
    QUERY_TYPES,
    CrossQuery,
    NormsQuery,
    PairwiseQuery,
    QueryResult,
    QueryStats,
    RadiusQuery,
    RoutingSpec,
    TopKQuery,
)
from repro.serving.routing import ShardRouting, build_shard_routing, kmeans_centroids
from repro.serving.serialization import (
    BatchInfo,
    SerializationError,
    batch_from_bytes,
    batch_to_bytes,
    decode_label,
    encode_label,
    iter_batch_rows,
    map_values,
    read_batch,
    read_batch_info,
    write_batch,
    write_batch_streaming,
)
from repro.serving.router import RouterService
from repro.serving.service import DistanceService, stable_smallest_k
from repro.serving.storage import STORAGE_SPECS, StorageSpec
from repro.serving.store import (
    DEFAULT_SHARD_CAPACITY,
    ShardedSketchStore,
    ShardView,
    read_manifest,
)
from repro.serving.wire import (
    WIRE_VERSION,
    WireError,
    decode_query,
    decode_result,
    encode_query,
    encode_result,
)


def __getattr__(name):
    # the HTTP server is the `python -m repro.serving.server` entry
    # point: importing it eagerly here would put the module in
    # sys.modules before runpy executes it as __main__ (the classic
    # double-import warning), so it loads on first attribute access
    if name == "SketchQueryServer":
        from repro.serving.server import SketchQueryServer

        return SketchQueryServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BatchInfo",
    "CrossQuery",
    "DEFAULT_SHARD_CAPACITY",
    "DistanceClient",
    "DistanceService",
    "ExecutionPolicy",
    "MaintenancePolicy",
    "NormsQuery",
    "PairwiseQuery",
    "QUERY_TYPES",
    "QueryResult",
    "QueryStats",
    "RadiusQuery",
    "ReleaseCache",
    "RouterService",
    "RoutingSpec",
    "STORAGE_SPECS",
    "SerializationError",
    "ShardRouting",
    "ShardView",
    "ShardedSketchStore",
    "SketchQueryServer",
    "StorageSpec",
    "StoreMaintainer",
    "TopKQuery",
    "WIRE_VERSION",
    "WireError",
    "batch_from_bytes",
    "batch_to_bytes",
    "build_shard_routing",
    "compact_store",
    "decode_label",
    "decode_query",
    "decode_result",
    "encode_label",
    "encode_query",
    "encode_result",
    "iter_batch_rows",
    "kmeans_centroids",
    "map_values",
    "merge_stores",
    "pin_blas_threads",
    "read_batch",
    "read_batch_info",
    "read_manifest",
    "stable_smallest_k",
    "write_batch",
    "write_batch_streaming",
]
