"""Serving layer: persistent sharded storage + distance query serving.

The paper's Section 2 point is that *anyone* can estimate distances
from published sketches; this package is the infrastructure for doing
that at scale.  :class:`ShardedSketchStore` accumulates released rows
into preallocated shards (amortised O(1) appends, cached per-shard
norms, binary persistence); :class:`DistanceService` answers top-k,
radius, cross-batch and pairwise-submatrix queries by streaming those
shards through the vectorised estimators.

The analyst-side index :class:`~repro.core.knn.PrivateNeighborIndex`
delegates to this layer, and a :class:`~repro.core.protocol.SketchingSession`
exposes it via :meth:`~repro.core.protocol.SketchingSession.serve`.
"""

from repro.serving.serialization import (
    SerializationError,
    batch_from_bytes,
    batch_to_bytes,
    read_batch,
    write_batch,
)
from repro.serving.service import DistanceService, stable_smallest_k
from repro.serving.store import DEFAULT_SHARD_CAPACITY, ShardedSketchStore

__all__ = [
    "DEFAULT_SHARD_CAPACITY",
    "DistanceService",
    "SerializationError",
    "ShardedSketchStore",
    "batch_from_bytes",
    "batch_to_bytes",
    "read_batch",
    "stable_smallest_k",
    "write_batch",
]
