"""Serving layer: persistent sharded storage + distance query serving.

The paper's Section 2 point is that *anyone* can estimate distances
from published sketches; this package is the infrastructure for doing
that at scale.  :class:`ShardedSketchStore` accumulates released rows
into preallocated shards (amortised O(1) appends, cached per-shard
norms and norm bounds, atomic binary persistence, lazy memory-mapped
loading for stores larger than RAM, compaction and merge tooling);
:class:`DistanceService` answers top-k, radius, cross-batch and
pairwise-submatrix queries by streaming those shards through the
vectorised estimators — serially or across a thread pool, as selected
by an :class:`ExecutionPolicy`.

**Concurrency contract.**  One writer at a time may append to a store;
any number of readers may query it concurrently.  Every query freezes a
store snapshot first and therefore sees a *consistent prefix* of the
rows (appends publish rows and norm caches before sizes, so a snapshot
never exposes a partially written row).  Queries never block appends
and appends never block queries.  ``save``/``load``/``compact``/
``merge`` are writer-side operations: run them from the writer, not
concurrently with another writer.  Saving over a directory counts as
writing every store handle that was mmap-loaded from it — such readers
must re-``load`` afterwards (see :meth:`ShardedSketchStore.save`).

**Prefilter guarantee.**  The norm-bound prefilter (on by default, see
:class:`ExecutionPolicy`) skips a shard only when the reverse triangle
inequality over the shard's cached norm range — minus a safety slack
that dominates floating-point rounding — proves every distance in the
shard is strictly worse than the current threshold.  Query results with
the prefilter on are identical to results with it off, ties included;
it is a work-skipping optimisation, never an approximation.

The analyst-side index :class:`~repro.core.knn.PrivateNeighborIndex`
delegates to this layer, and a :class:`~repro.core.protocol.SketchingSession`
exposes it via :meth:`~repro.core.protocol.SketchingSession.serve`.
"""

from repro.serving.execution import ExecutionPolicy
from repro.serving.serialization import (
    BatchInfo,
    SerializationError,
    batch_from_bytes,
    batch_to_bytes,
    decode_label,
    encode_label,
    map_values,
    read_batch,
    read_batch_info,
    write_batch,
)
from repro.serving.service import DistanceService, stable_smallest_k
from repro.serving.store import (
    DEFAULT_SHARD_CAPACITY,
    ShardedSketchStore,
    ShardView,
)

__all__ = [
    "BatchInfo",
    "DEFAULT_SHARD_CAPACITY",
    "DistanceService",
    "ExecutionPolicy",
    "SerializationError",
    "ShardView",
    "ShardedSketchStore",
    "batch_from_bytes",
    "batch_to_bytes",
    "decode_label",
    "encode_label",
    "map_values",
    "read_batch",
    "read_batch_info",
    "stable_smallest_k",
    "write_batch",
]
