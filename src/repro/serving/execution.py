"""Execution policies for the shard-parallel query plane.

A :class:`~repro.serving.service.DistanceService` turns every query
into independent per-shard distance blocks; :class:`ExecutionPolicy`
decides how those blocks are scheduled.  ``workers=1`` (the default)
streams them serially; ``workers=N`` dispatches them onto a thread pool
of ``N`` workers.  Threads — not processes — are the right tool here:
each block is dominated by one BLAS matrix multiplication, which
releases the GIL, so shard blocks genuinely overlap while the Python
merge stays trivially small.

Results are **bit-identical** across policies: every shard block is the
same deterministic arithmetic whatever thread runs it, and the merge
consumes the blocks in shard order regardless of completion order.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass


def run_ordered(fn, items: list, *, executor: ThreadPoolExecutor | None = None) -> list:
    """Apply ``fn`` to every item, results in input order.

    The one ordered-reduction primitive of the serving tier: the local
    :class:`~repro.serving.service.DistanceService` maps it over shard
    views, and the :class:`~repro.serving.router.RouterService` maps it
    over network backends — same contract both times.  With no
    ``executor`` (or fewer than two items) it streams on the calling
    thread; otherwise items run concurrently on the pool while results
    still come back in input order, so downstream merges are
    schedule-independent.  An exception from any item propagates to the
    caller unchanged.
    """
    if executor is None or len(items) <= 1:
        return [fn(item) for item in items]
    return list(executor.map(fn, items))

_WORKERS_ENV = "REPRO_SERVING_WORKERS"
_PREFILTER_ENV = "REPRO_SERVING_PREFILTER"
_TRUE_VALUES = ("1", "true", "on", "yes")
_FALSE_VALUES = ("0", "false", "off", "no")


def _workers_from_env() -> int:
    raw = os.environ.get(_WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            f"{_WORKERS_ENV}={raw!r} is not a valid worker count: expected a "
            "positive integer such as 4 (unset it for serial execution)"
        ) from None
    if workers < 1:
        raise ValueError(
            f"{_WORKERS_ENV}={raw!r} is not a valid worker count: must be "
            ">= 1 (unset it for serial execution)"
        )
    return workers


def _prefilter_from_env() -> bool:
    raw = os.environ.get(_PREFILTER_ENV, "").strip().lower()
    if not raw:  # unset or empty means the default, same as the workers var
        return True
    if raw in _TRUE_VALUES:
        return True
    if raw in _FALSE_VALUES:
        return False
    raise ValueError(
        f"{_PREFILTER_ENV}={raw!r} is not a valid switch: use one of "
        f"{'/'.join(_TRUE_VALUES)} or {'/'.join(_FALSE_VALUES)}"
    )


@dataclass(frozen=True, repr=False)
class ExecutionPolicy:
    """How a :class:`DistanceService` schedules per-shard query work.

    Parameters
    ----------
    workers:
        ``1`` streams shards serially on the calling thread; ``N > 1``
        fans shard blocks out across a pool of ``N`` threads.
    prefilter:
        Enable the norm-bound shard prefilter (skip shards whose
        best-case distance provably cannot produce a result).  Exact —
        filtered and unfiltered queries return identical answers; see
        :mod:`repro.serving.service` for the guarantee.
    """

    workers: int = 1
    prefilter: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    def __repr__(self) -> str:
        mode = "serial" if self.workers == 1 else f"workers={self.workers}"
        return f"ExecutionPolicy({mode}, prefilter={'on' if self.prefilter else 'off'})"

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    @classmethod
    def from_env(cls) -> "ExecutionPolicy":
        """The default policy, overridable via the environment.

        ``REPRO_SERVING_WORKERS`` sets the worker count — CI uses it to
        run the whole serving test suite under a 4-worker pool without
        touching the tests — and ``REPRO_SERVING_PREFILTER=0`` disables
        the prefilter (an A/B lever for debugging; the prefilter is
        exact, so results never depend on it).  Malformed values raise
        ``ValueError`` naming the variable, the offending value and the
        accepted forms — a typo in a deployment manifest should fail
        loudly at service construction, not silently fall back.
        """
        return cls(workers=_workers_from_env(), prefilter=_prefilter_from_env())
