"""Execution policies for the shard-parallel query plane.

A :class:`~repro.serving.service.DistanceService` turns every query
into independent per-shard distance blocks; :class:`ExecutionPolicy`
decides how those blocks are scheduled.  ``workers=1`` (the default)
streams them serially; ``workers=N`` dispatches them onto a thread pool
of ``N`` workers.  Threads — not processes — are the right tool here:
each block is dominated by one BLAS matrix multiplication, which
releases the GIL, so shard blocks genuinely overlap while the Python
merge stays trivially small.

Results are **bit-identical** across policies: every shard block is the
same deterministic arithmetic whatever thread runs it, and the merge
consumes the blocks in shard order regardless of completion order.

**BLAS threads compose multiplicatively with the pool.**  Most BLAS
builds default to one internal thread per core; fanning shard blocks
across ``N`` pool workers then runs ``N × cores`` compute threads, and
the oversubscribed kernel threads spend their time context-switching
instead of multiplying.  :func:`pin_blas_threads` (called once, when a
service first builds its pool) pins the BLAS libraries to one thread
each so the *pool* is the only parallelism lever, exactly the
threadpoolctl recipe — via threadpoolctl itself when installed, else a
ctypes probe of the loaded BLAS plus the standard ``*_NUM_THREADS``
environment guard for libraries yet to load.  Operators who want a
different split (say 2 BLAS threads under a 2-worker pool on a 16-core
box) set ``REPRO_SERVING_BLAS_THREADS``.
"""

from __future__ import annotations

import ctypes
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass


def run_ordered(fn, items: list, *, executor: ThreadPoolExecutor | None = None) -> list:
    """Apply ``fn`` to every item, results in input order.

    The one ordered-reduction primitive of the serving tier: the local
    :class:`~repro.serving.service.DistanceService` maps it over shard
    views, and the :class:`~repro.serving.router.RouterService` maps it
    over network backends — same contract both times.  With no
    ``executor`` (or fewer than two items) it streams on the calling
    thread; otherwise items run concurrently on the pool while results
    still come back in input order, so downstream merges are
    schedule-independent.  An exception from any item propagates to the
    caller unchanged.
    """
    if executor is None or len(items) <= 1:
        return [fn(item) for item in items]
    return list(executor.map(fn, items))

_WORKERS_ENV = "REPRO_SERVING_WORKERS"
_PREFILTER_ENV = "REPRO_SERVING_PREFILTER"
_ROUTING_ENV = "REPRO_SERVING_ROUTING"
_BLAS_THREADS_ENV = "REPRO_SERVING_BLAS_THREADS"
_TRUE_VALUES = ("1", "true", "on", "yes")
_FALSE_VALUES = ("0", "false", "off", "no")

#: The thread-count knobs every mainstream BLAS/OpenMP build reads at
#: library load time — the environment half of the guard, covering any
#: compute library imported after the pin.
_BLAS_ENV_VARS = (
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "OMP_NUM_THREADS",
    "BLIS_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)

#: ``set_num_threads``-style entry points of the BLAS builds numpy links
#: against, for the ctypes half of the guard (the env vars cannot reach
#: a library that already read them at load time).
_BLAS_SETTERS = (
    "openblas_set_num_threads",
    "openblas_set_num_threads64_",
    # the symbol names in the OpenBLAS builds vendored inside numpy/scipy
    # manylinux wheels, which prefix everything with scipy_
    "scipy_openblas_set_num_threads",
    "scipy_openblas_set_num_threads64_",
    "MKL_Set_Num_Threads",
    "bli_thread_set_num_threads",
)

_pin_lock = threading.Lock()
_pinned: int | None = None
_threadpoolctl_limits = None  # keeps a threadpoolctl pin alive process-wide


def _blas_threads_from_env() -> int | None:
    raw = os.environ.get(_BLAS_THREADS_ENV, "").strip()
    if not raw:
        return None
    try:
        threads = int(raw)
    except ValueError:
        raise ValueError(
            f"{_BLAS_THREADS_ENV}={raw!r} is not a valid BLAS thread count: "
            "expected a positive integer such as 1 (unset it for the "
            "default: 1 BLAS thread under a parallel worker pool)"
        ) from None
    if threads < 1:
        raise ValueError(
            f"{_BLAS_THREADS_ENV}={raw!r} is not a valid BLAS thread count: "
            "must be >= 1 (unset it for the default)"
        )
    return threads


def _loaded_blas_libraries():
    """Handles for BLAS shared objects already mapped into this process.

    A minimal stand-in for threadpoolctl's prefix scan: read the mapped
    files from ``/proc/self/maps`` and keep the ones that look like a
    BLAS build.  Platforms without /proc simply yield nothing — the
    environment guard still covers subprocesses and later imports.
    """
    try:
        with open("/proc/self/maps") as maps:
            mapped = {
                line.split(None, 5)[-1].strip()
                for line in maps
                if line.rstrip().endswith(".so") or ".so." in line
            }
    except OSError:
        return
    markers = ("openblas", "libblas", "libcblas", "mkl_rt", "libblis")
    for path in sorted(mapped):
        name = os.path.basename(path).lower()
        if any(marker in name for marker in markers):
            try:
                yield ctypes.CDLL(path)
            except OSError:
                continue


def _pin_loaded_blas(threads: int) -> None:
    """Best-effort runtime pin of every BLAS already in the process."""
    global _threadpoolctl_limits
    try:
        import threadpoolctl
    except ImportError:
        threadpoolctl = None
    if threadpoolctl is not None:
        # holding the controller applies the limit for the life of the
        # process (releasing it would restore the oversubscribed default)
        _threadpoolctl_limits = threadpoolctl.threadpool_limits(
            limits=threads, user_api="blas"
        )
        return
    for lib in _loaded_blas_libraries():
        for symbol in _BLAS_SETTERS:
            setter = getattr(lib, symbol, None)
            if setter is not None:
                try:
                    setter(threads)
                except (ctypes.ArgumentError, OSError):  # pragma: no cover
                    continue


def pin_blas_threads(threads: int | None = None) -> int:
    """Pin BLAS-internal threading so the worker pool is the only lever.

    Called once per process by :class:`~repro.serving.service.DistanceService`
    when a parallel policy first builds its pool.  ``threads=None``
    means the default of 1 BLAS thread; ``REPRO_SERVING_BLAS_THREADS``
    overrides both the argument and the default (and is validated
    loudly, like every other serving knob).  Pre-existing explicit
    ``OPENBLAS_NUM_THREADS``-style settings are respected — the
    environment half uses ``setdefault`` — unless the override variable
    forces them.  Returns the pinned count; repeat calls are no-ops
    returning the first pin (one process, one BLAS configuration).
    """
    global _pinned
    override = _blas_threads_from_env()
    requested = override if override is not None else (threads or 1)
    with _pin_lock:
        if _pinned is not None:
            return _pinned
        value = str(requested)
        for var in _BLAS_ENV_VARS:
            if override is not None:
                os.environ[var] = value
            else:
                os.environ.setdefault(var, value)
        _pin_loaded_blas(requested)
        _pinned = requested
        return requested


def _workers_from_env() -> int:
    raw = os.environ.get(_WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            f"{_WORKERS_ENV}={raw!r} is not a valid worker count: expected a "
            "positive integer such as 4 (unset it for serial execution)"
        ) from None
    if workers < 1:
        raise ValueError(
            f"{_WORKERS_ENV}={raw!r} is not a valid worker count: must be "
            ">= 1 (unset it for serial execution)"
        )
    return workers


def _switch_from_env(var: str) -> bool:
    raw = os.environ.get(var, "").strip().lower()
    if not raw:  # unset or empty means the default, same as the workers var
        return True
    if raw in _TRUE_VALUES:
        return True
    if raw in _FALSE_VALUES:
        return False
    raise ValueError(
        f"{var}={raw!r} is not a valid switch: use one of "
        f"{'/'.join(_TRUE_VALUES)} or {'/'.join(_FALSE_VALUES)}"
    )


def _prefilter_from_env() -> bool:
    return _switch_from_env(_PREFILTER_ENV)


def _routing_from_env() -> bool:
    return _switch_from_env(_ROUTING_ENV)


@dataclass(frozen=True, repr=False)
class ExecutionPolicy:
    """How a :class:`DistanceService` schedules per-shard query work.

    Parameters
    ----------
    workers:
        ``1`` streams shards serially on the calling thread; ``N > 1``
        fans shard blocks out across a pool of ``N`` threads.
    prefilter:
        Enable the norm-bound shard prefilter (skip shards whose
        best-case distance provably cannot produce a result).  Exact —
        filtered and unfiltered queries return identical answers; see
        :mod:`repro.serving.service` for the guarantee.
    routing:
        Enable the exact centroid-routing stage ahead of the prefilter
        on stores that carry a routing table
        (:mod:`repro.serving.routing`).  Also exact — the centroid-ball
        bound only skips provably hopeless shards, so results never
        depend on it.  Per-query ``RoutingSpec(nprobe=N)`` approximate
        routing is requested on the query itself and is *not* gated by
        this switch (an explicit spec is an explicit recall trade).
    """

    workers: int = 1
    prefilter: bool = True
    routing: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    def __repr__(self) -> str:
        mode = "serial" if self.workers == 1 else f"workers={self.workers}"
        return (
            f"ExecutionPolicy({mode}, prefilter={'on' if self.prefilter else 'off'}, "
            f"routing={'on' if self.routing else 'off'})"
        )

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    @classmethod
    def from_env(cls) -> "ExecutionPolicy":
        """The default policy, overridable via the environment.

        ``REPRO_SERVING_WORKERS`` sets the worker count — CI uses it to
        run the whole serving test suite under a 4-worker pool without
        touching the tests — ``REPRO_SERVING_PREFILTER=0`` disables
        the prefilter and ``REPRO_SERVING_ROUTING=0`` the exact routing
        stage (A/B levers for debugging; both are exact, so results
        never depend on them).  Malformed values raise ``ValueError``
        naming the variable, the offending value and the accepted
        forms — a typo in a deployment manifest should fail loudly at
        service construction, not silently fall back.
        """
        return cls(
            workers=_workers_from_env(),
            prefilter=_prefilter_from_env(),
            routing=_routing_from_env(),
        )
