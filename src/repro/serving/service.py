"""Distance queries over a sharded store of published sketches.

:class:`DistanceService` is the analyst-facing query plane: it answers
top-``k``, radius, cross-batch and pairwise-submatrix queries by
streaming the store's shards through the vectorised estimators of
:mod:`repro.core.estimators`, reusing each shard's cached squared norms
(``sq_b`` in the expanded distance formula) so a query touches every
stored row at most once and recomputes nothing.

Three mechanisms keep large stores fast:

* **Shard parallelism** — an :class:`~repro.serving.execution.ExecutionPolicy`
  with ``workers > 1`` dispatches per-shard distance blocks across a
  thread pool (BLAS releases the GIL) and merges the per-shard winners
  in shard order, so results are bit-identical to serial execution.
* **Norm-bound prefilter** — by the reverse triangle inequality a shard
  whose cached squared-norm range puts every row's best-case distance
  strictly above the current ``k``-th candidate (or the radius cutoff)
  cannot contribute a result and is skipped without computing its
  block.  The bound includes a relative safety slack that dominates
  floating-point rounding, so prefiltered answers are *identical* to
  unfiltered ones — it is a pure work-skipping optimisation, never an
  approximation.
* **Snapshot reads** — every query freezes a
  :meth:`~repro.serving.store.ShardedSketchStore.snapshot` first, so it
  sees a consistent prefix of the store even while one writer keeps
  appending (the store-level concurrency contract: one writer at a
  time, any number of readers).

Empty-store behaviour is uniform across ``top_k`` / ``radius`` /
``cross``: a store that has *never* seen a release has no pinned
metadata to validate against, so all three raise ``ValueError``; a
store that is empty but carries pinned metadata (e.g. a zero-row batch
was added) validates the query normally and returns empty results.

.. note:: **Estimates can be negative.**  Every distance returned by
   this layer is the *unbiased* squared-distance estimate of Lemma 3 /
   Lemma 8: the noise correction ``2 m E[eta^2]`` is subtracted from the
   raw sketch distance, and at tiny true distances the correction can
   overshoot, producing a negative number.  Orderings (top-``k``,
   radius cut-offs) remain meaningful because the correction is the
   same constant shift for every entry.  This caveat applies to every
   method below and is stated once here instead of per method.
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core import estimators
from repro.core.sketch import PrivateSketch, SketchBatch
from repro.serving.execution import ExecutionPolicy
from repro.serving.store import ShardedSketchStore, ShardView


def stable_smallest_k(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest entries, in stable ascending order.

    Equivalent to ``np.argsort(values, kind="stable")[:k]`` — ties are
    broken by position, including ties *across* the ``k``-th boundary,
    NaNs sort last (after ``+inf``) and keep their relative order — but
    runs in O(n + k log k) via :func:`np.argpartition` instead of
    sorting all ``n`` entries.  ``k <= 0`` selects nothing.
    """
    values = np.asarray(values)
    n = values.size
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    if k >= n:
        return np.argsort(values, kind="stable")
    kth = np.partition(values, k - 1)[k - 1]
    if np.isnan(kth):
        # partition places NaNs last, so a NaN k-th pivot means every
        # non-NaN entry is selected and NaNs fill the remaining slots
        # in index order — `values == kth` would select nothing.
        below = np.flatnonzero(~np.isnan(values))
        tied = np.flatnonzero(np.isnan(values))
    else:
        below = np.flatnonzero(values < kth)
        tied = np.flatnonzero(values == kth)
    take = np.concatenate([below, tied[: k - below.size]])
    return take[np.argsort(values[take], kind="stable")]


#: Relative safety slack applied to prefilter bounds.  Double-precision
#: rounding in a distance block is ~1e-16 relative; a 1e-9 margin
#: dominates it by seven orders of magnitude while giving up essentially
#: none of the prefilter's skipping power.
_PREFILTER_REL_SLACK = 1e-9


def _shard_lower_bounds(
    view: ShardView, sq_rows: np.ndarray, query_norms: np.ndarray, correction: float
) -> np.ndarray:
    """Conservative per-query lower bounds on the shard's estimates.

    Reverse triangle inequality in sketch space: ``||q - b|| >=
    | ||q|| - ||b|| |``, so with the shard's cached squared-norm range
    ``[lo, hi]`` every entry of the shard's distance block is at least
    ``gap^2 - correction`` where ``gap = max(0, sqrt(lo) - ||q||,
    ||q|| - sqrt(hi))``.  A relative slack larger than any rounding the
    block arithmetic can accumulate is subtracted, so comparing the
    bound *strictly greater* against a threshold can only skip shards
    whose every entry genuinely exceeds the threshold — prefiltered
    results are identical to unfiltered ones, ties included.
    """
    lo, hi = view.norm_bounds()
    gap = np.maximum(np.sqrt(lo) - query_norms, query_norms - np.sqrt(hi))
    gap = np.maximum(gap, 0.0)
    slack = _PREFILTER_REL_SLACK * (sq_rows + hi + abs(correction)) + 1e-12
    return gap * gap - correction - slack


class _RunningBest:
    """Thread-safe per-query record of the best ``k`` estimates so far.

    Feeds the top-``k`` prefilter: a shard is skippable only when, for
    *every* query, its lower bound is strictly worse than the current
    ``k``-th best estimate.  Under parallel execution the record lags
    behind the serial schedule, which can only make skipping rarer —
    never wrong.
    """

    def __init__(self, n_queries: int, k: int) -> None:
        self._k = k
        self._lock = threading.Lock()
        self._best = [np.empty(0)] * n_queries

    def skippable(self, bounds: np.ndarray) -> bool:
        with self._lock:
            for best, bound in zip(self._best, bounds):
                if best.size < self._k or not bound > best[-1]:
                    return False
            return True

    def update(self, per_query_estimates: list[np.ndarray]) -> None:
        with self._lock:
            for q, estimates in enumerate(per_query_estimates):
                merged = np.concatenate([self._best[q], estimates])
                merged.sort()
                self._best[q] = merged[: self._k]


class DistanceService:
    """Serves distance queries from a :class:`ShardedSketchStore`.

    Construct over an existing store, or use :meth:`from_batches` to
    build store and service in one step.  The service is a pure reader:
    it never mutates the store, so one appending writer and any number
    of querying readers interleave freely (each query sees a consistent
    snapshot).  ``policy`` selects serial or thread-pool execution; by
    default it comes from :meth:`ExecutionPolicy.from_env`.

    A parallel service owns a lazily created thread pool; :meth:`close`
    (or use as a context manager) releases it.
    """

    def __init__(
        self, store: ShardedSketchStore, policy: ExecutionPolicy | None = None
    ) -> None:
        self.store = store
        self.policy = ExecutionPolicy.from_env() if policy is None else policy
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    @classmethod
    def from_batches(
        cls,
        *batches: SketchBatch,
        shard_capacity: int | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> "DistanceService":
        """Build a store from released batches and wrap it."""
        store = (
            ShardedSketchStore()
            if shard_capacity is None
            else ShardedSketchStore(shard_capacity=shard_capacity)
        )
        for batch in batches:
            store.add_batch(batch)
        return cls(store, policy=policy)

    def __len__(self) -> int:
        return len(self.store)

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial policies)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "DistanceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shard-scheduling core -----------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.policy.workers,
                    thread_name_prefix="repro-serving",
                )
            return self._pool

    def _run_ordered(self, fn, views: list[ShardView]) -> list:
        """Apply ``fn`` to every shard view, results in shard order.

        Serial policies stream on the calling thread; parallel policies
        dispatch onto the pool.  Either way the caller receives results
        ordered by shard, so downstream merges are schedule-independent.
        """
        if not self.policy.parallel or len(views) <= 1:
            return [fn(view) for view in views]
        return list(self._executor().map(fn, views))

    def _query_rows(self, query) -> np.ndarray:
        """Validate a query release against the store, as an ``(m, k)`` matrix.

        Validation runs against the pinned metadata whenever any release
        has ever been added — including when the store currently holds
        zero rows — so an incompatible query is always rejected.  Only a
        store that has never seen a release cannot validate anything.
        """
        meta = self.store.metadata
        if meta is None:
            raise ValueError("the index is empty")
        estimators.check_compatible(meta, query)
        values = np.asarray(query.values, dtype=np.float64)
        return values[np.newaxis, :] if values.ndim == 1 else values

    def _correction(self) -> float:
        return estimators.sq_distance_correction(self.store.metadata)

    # -- queries -------------------------------------------------------------

    def top_k(self, query: PrivateSketch, k: int = 1) -> list[tuple[object, float]]:
        """The ``k`` stored entries closest to ``query``.

        Returns ``(label, estimated squared distance)`` pairs in
        ascending distance order, ties broken by insertion order.
        """
        return self.top_k_batch(query, k)[0]

    def top_k_batch(self, queries, k: int = 1) -> list[list[tuple[object, float]]]:
        """One top-``k`` ranking per row of ``queries`` (sketch or batch).

        Each shard contributes its own ``k`` best candidates (selected
        with :func:`stable_smallest_k` against cached norms) and the
        per-shard winners merge into the global ranking — no full
        ``n``-row sort ever happens.  Shards whose norm bounds prove
        they cannot beat the current ``k``-th candidate for *any* query
        are skipped entirely; with a parallel policy the remaining
        shard blocks run on the worker pool.  Results are identical
        whatever the policy.
        """
        if k < 1:
            raise ValueError(f"top must be >= 1, got {k}")
        rows = self._query_rows(queries)
        views = self.store.snapshot()
        n_queries = rows.shape[0]
        if not views:
            return [[] for _ in range(n_queries)]
        sq_rows = np.einsum("ij,ij->i", rows, rows)
        query_norms = np.sqrt(sq_rows)
        correction = self._correction()
        running = _RunningBest(n_queries, k) if self.policy.prefilter else None

        def scan(view: ShardView):
            if running is not None and running.skippable(
                _shard_lower_bounds(view, sq_rows, query_norms, correction)
            ):
                return None
            block = estimators.cross_sq_distances_from_parts(
                rows, sq_rows, view.values, view.sq_norms, correction
            )
            winners_idx, winners_est = [], []
            for q in range(n_queries):
                winners = stable_smallest_k(block[q], k)
                winners_idx.append(winners + view.start)
                winners_est.append(block[q][winners])
            if running is not None:
                running.update(winners_est)
            return winners_idx, winners_est

        candidates = [c for c in self._run_ordered(scan, views) if c is not None]
        results = []
        for q in range(n_queries):
            idx = np.concatenate([c[0][q] for c in candidates])
            est = np.concatenate([c[1][q] for c in candidates])
            # ties across shards resolve by global position — the same
            # order a stable sort over the full concatenated row gives
            order = np.lexsort((idx, est))[:k]
            results.append(
                [(self.store.label(int(idx[i])), float(est[i])) for i in order]
            )
        return results

    def radius(self, query: PrivateSketch, radius_sq: float) -> list[tuple[object, float]]:
        """All stored entries with estimated squared distance <= ``radius_sq``.

        Hits come back in ascending distance order; only the hits are
        sorted (the non-matching rows are filtered out first).  Shards
        whose norm bounds put every row strictly outside the radius are
        skipped without computing their block.
        """
        if radius_sq < 0:
            raise ValueError(f"radius_sq must be >= 0, got {radius_sq}")
        rows = self._query_rows(query)
        if rows.shape[0] != 1:
            raise ValueError("radius queries take a single sketch")
        views = self.store.snapshot()
        if not views:
            return []
        sq_rows = np.einsum("ij,ij->i", rows, rows)
        query_norms = np.sqrt(sq_rows)
        correction = self._correction()
        prefilter = self.policy.prefilter

        def scan(view: ShardView):
            if prefilter:
                bound = _shard_lower_bounds(view, sq_rows, query_norms, correction)
                if bound[0] > radius_sq:
                    return None
            block = estimators.cross_sq_distances_from_parts(
                rows, sq_rows, view.values, view.sq_norms, correction
            )[0]
            hits = np.flatnonzero(block <= radius_sq)
            return hits + view.start, block[hits]

        per_shard = [r for r in self._run_ordered(scan, views) if r is not None]
        if not per_shard:
            return []
        idx = np.concatenate([r[0] for r in per_shard])
        est = np.concatenate([r[1] for r in per_shard])
        order = np.lexsort((idx, est))
        return [(self.store.label(int(idx[i])), float(est[i])) for i in order]

    def cross(self, queries) -> np.ndarray:
        """The full ``(n_queries, n_stored)`` estimated distance matrix.

        Accepts a :class:`SketchBatch` or a single sketch (one row).
        Assembled shard by shard with cached norms — the store's rows
        are never concatenated into one matrix; parallel policies fill
        disjoint column blocks concurrently.
        """
        rows = self._query_rows(queries)
        views = self.store.snapshot()
        total = views[-1].start + views[-1].size if views else 0
        sq_rows = np.einsum("ij,ij->i", rows, rows)
        correction = self._correction()
        out = np.empty((rows.shape[0], total))

        def scan(view: ShardView):
            out[:, view.start : view.start + view.size] = (
                estimators.cross_sq_distances_from_parts(
                    rows, sq_rows, view.values, view.sq_norms, correction
                )
            )

        self._run_ordered(scan, views)
        return out

    def pairwise_submatrix(self, indices) -> np.ndarray:
        """All-pairs estimates among the stored rows at ``indices``.

        Gathers the selected rows (one copy of ``m`` rows) and runs the
        Gram-based pairwise estimator; entry ``(i, j)`` estimates the
        distance between stored rows ``indices[i]`` and ``indices[j]``,
        with a zero diagonal by convention.  On a memory-mapped store
        only the shards containing selected rows are touched.
        """
        if self.store.metadata is None:
            raise ValueError("the index is empty")
        views = self.store.snapshot()
        n = views[-1].start + views[-1].size if views else 0
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < -n or indices.max() >= n):
            raise IndexError(f"indices out of range for store of {n} rows")
        if indices.size:
            indices = indices % n
        bounds = np.cumsum([0] + [view.size for view in views])
        shard_ids = np.searchsorted(bounds, indices, side="right") - 1
        local = indices - bounds[shard_ids]
        gathered = np.empty((indices.size, self.store.metadata.output_dim))
        for shard in np.unique(shard_ids):
            mask = shard_ids == shard
            gathered[mask] = views[int(shard)].values[local[mask]]
        subset = dataclasses.replace(self.store.metadata, values=gathered, labels=())
        return estimators.pairwise_sq_distances(subset)
