"""Distance queries over a sharded store of published sketches.

:class:`DistanceService` is the analyst-facing query plane: it answers
top-``k``, radius, cross-batch and pairwise-submatrix queries by
streaming the store's shards through the vectorised estimators of
:mod:`repro.core.estimators`, reusing each shard's cached squared norms
(``sq_b`` in the expanded distance formula) so a query touches every
stored row exactly once and recomputes nothing.

.. note:: **Estimates can be negative.**  Every distance returned by
   this layer is the *unbiased* squared-distance estimate of Lemma 3 /
   Lemma 8: the noise correction ``2 m E[eta^2]`` is subtracted from the
   raw sketch distance, and at tiny true distances the correction can
   overshoot, producing a negative number.  Orderings (top-``k``,
   radius cut-offs) remain meaningful because the correction is the
   same constant shift for every entry.  This caveat applies to every
   method below and is stated once here instead of per method.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import estimators
from repro.core.sketch import PrivateSketch, SketchBatch
from repro.serving.store import ShardedSketchStore


def stable_smallest_k(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest entries, in stable ascending order.

    Equivalent to ``np.argsort(values, kind="stable")[:k]`` — ties are
    broken by position, including ties *across* the ``k``-th boundary —
    but runs in O(n + k log k) via :func:`np.argpartition` instead of
    sorting all ``n`` entries.  ``k <= 0`` selects nothing.
    """
    values = np.asarray(values)
    n = values.size
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    if k >= n:
        return np.argsort(values, kind="stable")
    kth = np.partition(values, k - 1)[k - 1]
    below = np.flatnonzero(values < kth)
    tied = np.flatnonzero(values == kth)
    take = np.concatenate([below, tied[: k - below.size]])
    return take[np.argsort(values[take], kind="stable")]


class DistanceService:
    """Serves distance queries from a :class:`ShardedSketchStore`.

    Construct over an existing store, or use :meth:`from_batches` to
    build store and service in one step.  The service is a pure reader:
    it never mutates the store, so adds and queries interleave freely.
    """

    def __init__(self, store: ShardedSketchStore) -> None:
        self.store = store

    @classmethod
    def from_batches(cls, *batches: SketchBatch, shard_capacity=None) -> "DistanceService":
        """Build a store from released batches and wrap it."""
        store = (
            ShardedSketchStore()
            if shard_capacity is None
            else ShardedSketchStore(shard_capacity=shard_capacity)
        )
        for batch in batches:
            store.add_batch(batch)
        return cls(store)

    def __len__(self) -> int:
        return len(self.store)

    # -- shard-streaming core ------------------------------------------------

    def _query_rows(self, query) -> np.ndarray:
        """Validate a query release against the store, as an ``(m, k)`` matrix."""
        if not len(self.store):
            raise ValueError("the index is empty")
        estimators.check_compatible(self.store.metadata, query)
        values = np.asarray(query.values, dtype=np.float64)
        return values[np.newaxis, :] if values.ndim == 1 else values

    def _shard_blocks(self, rows: np.ndarray, sq_rows: np.ndarray, correction: float):
        """Yield ``(global_start, block)`` distance blocks, one per shard.

        ``block[i, j]`` estimates the squared distance between query row
        ``i`` and stored row ``global_start + j``; each shard's cached
        squared norms supply the ``sq_b`` term.
        """
        start = 0
        for i in range(self.store.n_shards):
            stored = self.store.shard_values(i)
            yield start, estimators.cross_sq_distances_from_parts(
                rows, sq_rows, stored, self.store.shard_sq_norms(i), correction
            )
            start += stored.shape[0]

    def _correction(self) -> float:
        return estimators.sq_distance_correction(self.store.metadata)

    # -- queries -------------------------------------------------------------

    def top_k(self, query: PrivateSketch, k: int = 1) -> list[tuple[object, float]]:
        """The ``k`` stored entries closest to ``query``.

        Returns ``(label, estimated squared distance)`` pairs in
        ascending distance order, ties broken by insertion order.
        """
        return self.top_k_batch(query, k)[0]

    def top_k_batch(self, queries, k: int = 1) -> list[list[tuple[object, float]]]:
        """One top-``k`` ranking per row of ``queries`` (sketch or batch).

        Streams the store shard by shard: each shard contributes its own
        ``k`` best candidates (selected with :func:`stable_smallest_k`
        against cached norms), and the per-shard winners merge into the
        global ranking — so no full ``n``-row sort ever happens.
        """
        if k < 1:
            raise ValueError(f"top must be >= 1, got {k}")
        rows = self._query_rows(queries)
        sq_rows = np.einsum("ij,ij->i", rows, rows)
        candidate_idx: list[list[np.ndarray]] = [[] for _ in range(rows.shape[0])]
        candidate_est: list[list[np.ndarray]] = [[] for _ in range(rows.shape[0])]
        for start, block in self._shard_blocks(rows, sq_rows, self._correction()):
            for q in range(rows.shape[0]):
                winners = stable_smallest_k(block[q], k)
                candidate_idx[q].append(winners + start)
                candidate_est[q].append(block[q][winners])
        results = []
        for q in range(rows.shape[0]):
            idx = np.concatenate(candidate_idx[q])
            est = np.concatenate(candidate_est[q])
            # ties across shards resolve by global position — the same
            # order a stable sort over the full concatenated row gives
            order = np.lexsort((idx, est))[:k]
            results.append(
                [(self.store.label(int(idx[i])), float(est[i])) for i in order]
            )
        return results

    def radius(self, query: PrivateSketch, radius_sq: float) -> list[tuple[object, float]]:
        """All stored entries with estimated squared distance <= ``radius_sq``.

        Hits come back in ascending distance order; only the hits are
        sorted (the non-matching rows are filtered out first).
        """
        if radius_sq < 0:
            raise ValueError(f"radius_sq must be >= 0, got {radius_sq}")
        if not len(self.store):
            return []
        rows = self._query_rows(query)
        if rows.shape[0] != 1:
            raise ValueError("radius queries take a single sketch")
        sq_rows = np.einsum("ij,ij->i", rows, rows)
        hit_idx, hit_est = [], []
        for start, block in self._shard_blocks(rows, sq_rows, self._correction()):
            hits = np.flatnonzero(block[0] <= radius_sq)
            hit_idx.append(hits + start)
            hit_est.append(block[0][hits])
        idx = np.concatenate(hit_idx)
        est = np.concatenate(hit_est)
        order = np.lexsort((idx, est))
        return [(self.store.label(int(idx[i])), float(est[i])) for i in order]

    def cross(self, queries) -> np.ndarray:
        """The full ``(n_queries, n_stored)`` estimated distance matrix.

        Accepts a :class:`SketchBatch` or a single sketch (one row).
        Assembled shard by shard with cached norms — the store's rows
        are never concatenated into one matrix.
        """
        rows = self._query_rows(queries)
        sq_rows = np.einsum("ij,ij->i", rows, rows)
        out = np.empty((rows.shape[0], len(self.store)))
        for start, block in self._shard_blocks(rows, sq_rows, self._correction()):
            out[:, start : start + block.shape[1]] = block
        return out

    def pairwise_submatrix(self, indices) -> np.ndarray:
        """All-pairs estimates among the stored rows at ``indices``.

        Gathers the selected rows (one copy of ``m`` rows) and runs the
        Gram-based pairwise estimator; entry ``(i, j)`` estimates the
        distance between stored rows ``indices[i]`` and ``indices[j]``,
        with a zero diagonal by convention.
        """
        if not len(self.store):
            raise ValueError("the index is empty")
        indices = np.asarray(indices, dtype=np.int64)
        n = len(self.store)
        if indices.size and (indices.min() < -n or indices.max() >= n):
            raise IndexError(f"indices out of range for store of {n} rows")
        indices = indices % n if indices.size else indices
        bounds = np.cumsum([0] + self.store.shard_sizes())
        shard_ids = np.searchsorted(bounds, indices, side="right") - 1
        local = indices - bounds[shard_ids]
        gathered = np.empty((indices.size, self.store.metadata.output_dim))
        for shard in np.unique(shard_ids):
            mask = shard_ids == shard
            gathered[mask] = self.store.shard_values(int(shard))[local[mask]]
        subset = dataclasses.replace(self.store.metadata, values=gathered, labels=())
        return estimators.pairwise_sq_distances(subset)
