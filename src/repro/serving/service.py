"""The query plane: one ``execute()`` entry point over a sharded store.

:class:`DistanceService` answers the typed query algebra of
:mod:`repro.serving.queries` — :class:`~repro.serving.queries.TopKQuery`,
:class:`~repro.serving.queries.RadiusQuery`,
:class:`~repro.serving.queries.CrossQuery`,
:class:`~repro.serving.queries.PairwiseQuery`,
:class:`~repro.serving.queries.NormsQuery` — from a
:class:`~repro.serving.store.ShardedSketchStore`, streaming the store's
shards through the vectorised estimators of
:mod:`repro.core.estimators` and reusing each shard's cached squared
norms so a query touches every stored row at most once.

Everything enters through :meth:`DistanceService.execute` (or
:meth:`~DistanceService.execute_many`), which owns — exactly once, for
every query kind — store validation, snapshotting, the
:class:`~repro.serving.execution.ExecutionPolicy` fan-out, and the
:class:`~repro.serving.queries.QueryStats` accounting.  The HTTP
:class:`~repro.serving.client.DistanceClient` implements the same
``execute()`` protocol, so local and remote backends are
interchangeable.

Four mechanisms keep large stores fast:

* **Shard parallelism** — an :class:`~repro.serving.execution.ExecutionPolicy`
  with ``workers > 1`` dispatches per-shard distance blocks across a
  thread pool (BLAS releases the GIL) and merges the per-shard winners
  in shard order, so results are bit-identical to serial execution.
* **Centroid routing** — on a store carrying a
  :class:`~repro.serving.routing.ShardRouting` table (built by a
  clustered compaction), a stage *ahead of* the norm prefilter bounds
  each shard's whole distance block by the reverse triangle inequality
  over its centroid ball, ``max(0, ||q - c_i|| - r_i)^2``.  Exact mode
  (the default) skips only provably hopeless shards — bit-identical
  results, same slack discipline as the prefilter; a per-query
  :class:`~repro.serving.queries.RoutingSpec` with ``nprobe=N`` trades
  recall for speed by visiting only the ``N`` nearest-centroid shards.
  Shards the stage skips are counted in ``stats.shards_routed`` (a
  subset of ``shards_pruned``).  See :mod:`repro.serving.routing`.
* **Norm-bound prefilter** — by the reverse triangle inequality a shard
  whose cached squared-norm range puts every row's best-case distance
  strictly above the current ``k``-th candidate (or the radius cutoff)
  cannot contribute a result and is skipped without computing its
  block.  The bound includes a relative safety slack that dominates
  floating-point rounding, so prefiltered answers are *identical* to
  unfiltered ones — it is a pure work-skipping optimisation, never an
  approximation.  Shards it skips are reported in
  ``QueryResult.stats.shards_pruned``.
* **Snapshot reads** — every query freezes a
  :meth:`~repro.serving.store.ShardedSketchStore.snapshot` first, so it
  sees a consistent prefix of the store even while one writer keeps
  appending (the store-level concurrency contract: one writer at a
  time, any number of readers).

Two maintenance-facing contracts ride on the same snapshot discipline:

* **Tombstones** — rows the store has
  :meth:`~repro.serving.store.ShardedSketchStore.delete`-d are invisible
  to every query kind.  Distance blocks are still computed over the
  full shard and the dead entries discarded afterwards, so the
  surviving rows' estimates are *bit-identical* to what they were
  before the deletion — and to what they will be after compaction
  physically drops the tombstones.  Matrix-shaped payloads (cross,
  pairwise, norms) cover live rows only, in store order, exactly the
  shape a compacted store would serve.
* **Live store swap** — every handler reads ``self.store`` exactly
  once, up front; :meth:`DistanceService.swap_store` can therefore
  replace the store mid-flight (e.g. when maintenance publishes a new
  generation) and a query that already started simply finishes on the
  snapshot of the store it began with.

Empty-store behaviour is uniform across every query kind: a store that
has *never* seen a release has no pinned metadata to validate against,
so ``execute`` raises ``ValueError``; a store that is empty but carries
pinned metadata (e.g. a zero-row batch was added) validates the query
normally and returns empty results.

.. note:: **Negative estimates.**  Every distance this layer computes is
   the *unbiased* squared-distance estimate of Lemma 3 / Lemma 8: the
   noise correction ``2 m E[eta^2]`` is subtracted from the raw sketch
   distance, and at tiny true distances the correction can overshoot,
   producing a negative number.  Orderings and radius membership are
   decided on the raw values (the correction is a constant shift, so
   order is unaffected); ranking payloads (top-k, radius) then clamp
   the *reported* estimates at zero through
   :func:`repro.core.estimators.clamp_sq_estimates` — the single
   documented owner of the clamping rule — while matrix payloads
   (cross, pairwise, norms) stay raw and unbiased.

**Deprecation policy.**  The pre-query-plane methods ``top_k`` /
``top_k_batch`` / ``radius`` / ``cross`` / ``pairwise_submatrix`` are
thin shims over ``execute()``: bit-identical results, plus a
``DeprecationWarning``.  They remain for at least two further releases
of this package before removal; new code should construct the typed
query and call ``execute()``.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core import estimators
from repro.core.sketch import SketchBatch
from repro.serving.execution import ExecutionPolicy, pin_blas_threads, run_ordered
from repro.theory.quantisation import accumulation_gamma
from repro.serving.queries import (
    CrossQuery,
    NormsQuery,
    PairwiseQuery,
    QueryResult,
    QueryStats,
    RadiusQuery,
    TopKQuery,
)
from repro.serving.store import DEFAULT_SHARD_CAPACITY, ShardedSketchStore, ShardView


def stable_smallest_k(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest entries, in stable ascending order.

    Equivalent to ``np.argsort(values, kind="stable")[:k]`` — ties are
    broken by position, including ties *across* the ``k``-th boundary,
    NaNs sort last (after ``+inf``) and keep their relative order — but
    runs in O(n + k log k) via :func:`np.argpartition` instead of
    sorting all ``n`` entries.  ``k <= 0`` selects nothing.
    """
    values = np.asarray(values)
    n = values.size
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    if k >= n:
        return np.argsort(values, kind="stable")
    kth = np.partition(values, k - 1)[k - 1]
    if np.isnan(kth):
        # partition places NaNs last, so a NaN k-th pivot means every
        # non-NaN entry is selected and NaNs fill the remaining slots
        # in index order — `values == kth` would select nothing.
        below = np.flatnonzero(~np.isnan(values))
        tied = np.flatnonzero(np.isnan(values))
    else:
        below = np.flatnonzero(values < kth)
        tied = np.flatnonzero(values == kth)
    take = np.concatenate([below, tied[: k - below.size]])
    return take[np.argsort(values[take], kind="stable")]


#: Relative safety slack applied to prefilter bounds.  Double-precision
#: rounding in a distance block is ~1e-16 relative; a 1e-9 margin
#: dominates it by seven orders of magnitude while giving up essentially
#: none of the prefilter's skipping power.
_PREFILTER_REL_SLACK = 1e-9


def _shard_lower_bounds(
    view: ShardView,
    sq_rows: np.ndarray,
    query_norms: np.ndarray,
    correction: float,
    gamma: float = 0.0,
) -> np.ndarray:
    """Conservative per-query lower bounds on the shard's estimates.

    Reverse triangle inequality in sketch space: ``||q - b|| >=
    | ||q|| - ||b|| |``, so with the shard's cached squared-norm range
    ``[lo, hi]`` every entry of the shard's distance block is at least
    ``gap^2 - correction`` where ``gap = max(0, sqrt(lo) - ||q||,
    ||q|| - sqrt(hi))``.  A relative slack larger than any rounding the
    block arithmetic can accumulate is subtracted, so comparing the
    bound *strictly greater* against a threshold can only skip shards
    whose every entry genuinely exceeds the threshold — prefiltered
    results are identical to unfiltered ones, ties included.

    On a float32-scanned shard (a quantised store) the block's GEMM
    rounds far more coarsely than float64 — up to the accumulation
    envelope of :mod:`repro.theory.quantisation` — so the caller passes
    that store's ``gamma`` and the slack widens by
    ``4 * gamma * ||q|| * sqrt(hi)``; the cached norms already bound
    the *decoded* rows, so quantisation itself needs no extra term.
    The widened slack is still orders of magnitude below any real
    pruning margin, so skipping power is effectively unchanged.
    """
    lo, hi = view.norm_bounds()
    gap = np.maximum(np.sqrt(lo) - query_norms, query_norms - np.sqrt(hi))
    gap = np.maximum(gap, 0.0)
    slack = _PREFILTER_REL_SLACK * (sq_rows + hi + abs(correction)) + 1e-12
    if gamma and np.isfinite(hi):
        slack = slack + 4.0 * gamma * query_norms * np.sqrt(hi)
    return gap * gap - correction - slack


class _RunningBest:
    """Thread-safe per-query record of the best ``k`` estimates so far.

    Feeds the top-``k`` prefilter: a shard is skippable only when, for
    *every* query, its lower bound is strictly worse than the current
    ``k``-th best estimate.  Under parallel execution the record lags
    behind the serial schedule, which can only make skipping rarer —
    never wrong.
    """

    def __init__(self, n_queries: int, k: int) -> None:
        self._k = k
        self._lock = threading.Lock()
        self._best = [np.empty(0)] * n_queries

    def skippable(self, bounds: np.ndarray) -> bool:
        with self._lock:
            for best, bound in zip(self._best, bounds):
                if best.size < self._k or not bound > best[-1]:
                    return False
            return True

    def update(self, per_query_estimates: list[np.ndarray]) -> None:
        with self._lock:
            for q, estimates in enumerate(per_query_estimates):
                merged = np.concatenate([self._best[q], estimates])
                merged.sort()
                self._best[q] = merged[: self._k]


def _deprecated(old: str, replacement: str) -> None:
    warnings.warn(
        f"DistanceService.{old}() is deprecated and will be removed after two "
        f"further releases; build a {replacement} and call execute() instead "
        "(bit-identical results)",
        DeprecationWarning,
        stacklevel=3,
    )


def _shard_stats(
    views: list[ShardView],
    scanned_mask: list[bool],
    routed_mask: list[bool] | None = None,
) -> QueryStats:
    """Stats for a per-shard scan; ``scanned_mask[i]`` is False when pruned.

    Row counts are *live* rows — tombstoned rows are not served, so they
    are not reported, matching what a compacted store would say.
    ``routed_mask`` marks the pruned shards the centroid-routing stage
    (rather than the norm prefilter) skipped.
    """
    rows_total = sum(view.live_size for view in views)
    rows_scanned = sum(
        view.live_size for view, scanned in zip(views, scanned_mask) if scanned
    )
    visited = sum(scanned_mask)
    return QueryStats(
        shards_visited=visited,
        shards_pruned=len(views) - visited,
        shards_routed=0 if routed_mask is None else sum(routed_mask),
        rows_scanned=rows_scanned,
        rows_total=rows_total,
    )


class DistanceService:
    """Serves the typed query algebra from a :class:`ShardedSketchStore`.

    Construct over an existing store, or use :meth:`from_batches` to
    build store and service in one step.  The service is a pure reader:
    it never mutates the store, so one appending writer and any number
    of querying readers interleave freely (each query sees a consistent
    snapshot).  ``policy`` selects serial or thread-pool execution; by
    default it comes from :meth:`ExecutionPolicy.from_env`.

    A parallel service owns a lazily created thread pool; :meth:`close`
    (or use as a context manager) releases it.
    """

    def __init__(
        self, store: ShardedSketchStore, policy: ExecutionPolicy | None = None
    ) -> None:
        self.store = store
        self.policy = ExecutionPolicy.from_env() if policy is None else policy
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    @classmethod
    def from_batches(
        cls,
        *batches: SketchBatch,
        shard_capacity: int | None = None,
        policy: ExecutionPolicy | None = None,
        expected_digest: str | None = None,
        storage=None,
    ) -> "DistanceService":
        """Build a store from released batches and wrap it.

        ``expected_digest`` pins the store to one public configuration
        *before* any batch arrives: every construction path then fails
        fast on a foreign batch, exactly like
        :meth:`~repro.core.protocol.SketchingSession.serve` (which
        routes through here with its session's digest).  ``storage``
        selects the store's precision
        (:class:`~repro.serving.storage.StorageSpec`; default from
        ``REPRO_STORE_DTYPE``).
        """
        store = ShardedSketchStore(
            shard_capacity=DEFAULT_SHARD_CAPACITY
            if shard_capacity is None
            else shard_capacity,
            expected_digest=expected_digest,
            storage=storage,
        )
        for batch in batches:
            store.add_batch(batch)
        return cls(store, policy=policy)

    def __len__(self) -> int:
        return len(self.store)

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial policies)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def swap_store(self, store: ShardedSketchStore) -> ShardedSketchStore:
        """Atomically switch to ``store``; returns the one it replaces.

        The live-swap seam: when maintenance publishes a new store
        generation, the server reloads it and swaps it in here without
        interrupting traffic.  Every handler binds ``self.store`` once,
        up front, so a query in flight finishes — consistently — on the
        snapshot of the store it started with, and the next query sees
        the replacement; nothing is ever half-and-half.  The new store
        must be compatible with the old (same public configuration):
        swapping in a store from a different configuration would change
        answers silently, so it is rejected.
        """
        old = self.store
        if old.metadata is not None and store.metadata is not None:
            estimators.check_compatible(old.metadata, store.metadata)
        self.store = store
        return old

    def __enter__(self) -> "DistanceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shard-scheduling core -----------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                # a parallel pool over a multi-threaded BLAS runs
                # workers × cores compute threads; pin BLAS to one
                # thread (REPRO_SERVING_BLAS_THREADS overrides) so the
                # pool is the only parallelism lever
                pin_blas_threads()
                self._pool = ThreadPoolExecutor(
                    max_workers=self.policy.workers,
                    thread_name_prefix="repro-serving",
                )
            return self._pool

    def _run_ordered(self, fn, views: list[ShardView]) -> list:
        """Apply ``fn`` to every shard view, results in shard order.

        Serial policies stream on the calling thread; parallel policies
        dispatch onto the pool.  Either way the caller receives results
        ordered by shard, so downstream merges are schedule-independent
        (the shared contract of :func:`repro.serving.execution.run_ordered`,
        which the network router reuses over backends).
        """
        pool = (
            self._executor() if self.policy.parallel and len(views) > 1 else None
        )
        return run_ordered(fn, views, executor=pool)

    @staticmethod
    def _query_rows(query, store: ShardedSketchStore) -> np.ndarray:
        """Validate a query release against the store, as an ``(m, k)`` matrix.

        Validation runs against the pinned metadata whenever any release
        has ever been added — including when the store currently holds
        zero rows — so an incompatible query is always rejected.  Only a
        store that has never seen a release cannot validate anything.
        (``store`` is the handler's once-bound store, not ``self.store``
        — the live-swap contract.)
        """
        meta = store.metadata
        if meta is None:
            raise ValueError("the index is empty")
        estimators.check_compatible(meta, query)
        values = np.asarray(query.values, dtype=np.float64)
        return values[np.newaxis, :] if values.ndim == 1 else values

    @staticmethod
    def _correction(store: ShardedSketchStore) -> float:
        return estimators.sq_distance_correction(store.metadata)

    def _scan_gamma(self, store: ShardedSketchStore | None = None) -> float:
        """The store's GEMM accumulation envelope for prefilter slack.

        Zero for float64 stores (the historical slack already covers
        float64 rounding); the float32 ``gamma_k`` otherwise, so the
        prefilter stays exact over quantised shards.  Handlers pass
        their once-bound store; ``None`` reads ``self.store`` (kept for
        external callers, e.g. the property suite).
        """
        store = self.store if store is None else store
        return accumulation_gamma(store.storage, store.metadata.output_dim)

    def _routing_for(self, store: ShardedSketchStore, views: list[ShardView], spec):
        """The routing table valid for this exact snapshot, or ``None``.

        Revalidates the store's table against the *frozen* snapshot's
        per-view sizes — a concurrent append between the table read and
        the snapshot can therefore never pair fresh rows with stale
        ball geometry.  ``spec`` is the query's
        :class:`~repro.serving.queries.RoutingSpec` (or ``None``): an
        explicit ``nprobe`` request on a store without a fresh table
        raises (the recall contract cannot be honoured), while exact
        mode silently degrades to an unrouted scan, which is always
        correct.  With routing disabled by policy and no explicit spec,
        returns ``None`` without touching the table.
        """
        nprobe = None if spec is None else spec.nprobe
        if not self.policy.routing and spec is None:
            return None
        routing = store.routing
        if routing is not None and not routing.matches([v.size for v in views]):
            routing = None
        if routing is None and nprobe is not None:
            raise ValueError(
                "this query requests nprobe routing but the store has no "
                "routing table for its current layout; rebuild one with "
                "compact(routing=True) or StoreMaintainer.rebuild_routing()"
            )
        return routing

    # -- the one entry point -------------------------------------------------

    _HANDLERS: dict = {}  # populated after the class body; type -> method name

    def execute(self, query) -> QueryResult:
        """Answer one typed query; the single entry point for every kind.

        Dispatches on the query's type, validates it against the store,
        freezes a snapshot, fans the per-shard work out according to the
        :class:`ExecutionPolicy`, and returns a
        :class:`~repro.serving.queries.QueryResult` whose ``stats``
        record what was actually scanned, pruned and how long it took.
        Raises ``TypeError`` for an object outside the query algebra and
        ``ValueError`` for a query the store cannot answer.
        """
        handler = self._HANDLERS.get(type(query))
        if handler is None:
            raise TypeError(
                f"execute() takes a typed query "
                f"(one of {[t.__name__ for t in self._HANDLERS]}), "
                f"got {type(query).__name__}"
            )
        started = time.perf_counter()
        payload, stats = getattr(self, handler)(query)
        stats = dataclasses.replace(
            stats, elapsed_seconds=time.perf_counter() - started
        )
        return QueryResult(payload=payload, stats=stats)

    def execute_many(self, queries) -> list[QueryResult]:
        """Execute a sequence of typed queries, results in input order.

        Each query freezes its own snapshot (so under a concurrent
        writer, later queries may see more rows — the same rule as
        issuing them one by one).
        """
        return [self.execute(query) for query in queries]

    # -- per-kind executors --------------------------------------------------

    def _execute_top_k(self, query: TopKQuery) -> tuple[list, QueryStats]:
        store = self.store  # bound once: a swap mid-query is invisible
        k = query.k
        rows = self._query_rows(query.queries, store)
        views = [v for v in store.snapshot() if v.live_size]
        n_queries = rows.shape[0]
        if not views:
            return [[] for _ in range(n_queries)], QueryStats()
        sq_rows = np.einsum("ij,ij->i", rows, rows)
        query_norms = np.sqrt(sq_rows)
        correction = self._correction(store)
        gamma = self._scan_gamma(store)
        routing = self._routing_for(store, views, query.routing)
        nprobe = None if query.routing is None else query.routing.nprobe
        routed = [False] * len(views)
        if nprobe is not None:
            # approximate mode: only the nprobe nearest-centroid shards
            # (union over query rows) are even eligible for scanning
            probe = set(routing.probe_shards(rows, sq_rows, nprobe).tolist())
            scan_items = [(i, views[i]) for i in sorted(probe)]
            for i in range(len(views)):
                routed[i] = i not in probe
            route_bounds = None
        else:
            scan_items = list(enumerate(views))
            # exact mode: one (n_queries, n_shards) bound matrix up
            # front; a shard is skipped only when the centroid-ball
            # bound *proves* it cannot beat the current k-th candidate
            route_bounds = (
                routing.lower_bounds(rows, sq_rows, query_norms, correction, gamma)
                if routing is not None
                else None
            )
        prefilter = self.policy.prefilter
        running = (
            _RunningBest(n_queries, k)
            if prefilter or route_bounds is not None
            else None
        )

        def scan(item):
            i, view = item
            if running is not None:
                if route_bounds is not None and running.skippable(
                    route_bounds[:, i]
                ):
                    routed[i] = True
                    return None
                if prefilter and running.skippable(
                    _shard_lower_bounds(view, sq_rows, query_norms, correction, gamma)
                ):
                    return None
            # the block covers every physical row — dead entries are
            # dropped after the fact, keeping survivors bit-identical
            block = estimators.cross_sq_distances_from_parts(
                rows, sq_rows, view.values, view.sq_norms, correction
            )
            live = None if view.dead is None else view.live_local()
            winners_idx, winners_est = [], []
            for q in range(n_queries):
                estimates = block[q] if live is None else block[q][live]
                winners = stable_smallest_k(estimates, k)
                winners_idx.append(
                    (winners if live is None else live[winners]) + view.start
                )
                winners_est.append(estimates[winners])
            if running is not None:
                running.update(winners_est)
            return winners_idx, winners_est

        per_shard = self._run_ordered(scan, scan_items)
        scanned = [False] * len(views)
        for (i, _), result in zip(scan_items, per_shard):
            scanned[i] = result is not None
        candidates = [c for c in per_shard if c is not None]
        results = []
        for q in range(n_queries):
            idx = np.concatenate(
                [c[0][q] for c in candidates] or [np.empty(0, dtype=np.intp)]
            )
            est = np.concatenate([c[1][q] for c in candidates] or [np.empty(0)])
            # ties across shards resolve by global position — the same
            # order a stable sort over the full concatenated row gives;
            # ordering is decided on the raw estimates, the *reported*
            # estimate is then clamped (see estimators.clamp_sq_estimates)
            order = np.lexsort((idx, est))[:k]
            results.append(
                [
                    (
                        store.label(int(idx[i])),
                        estimators.clamp_sq_estimates(float(est[i])),
                    )
                    for i in order
                ]
            )
        return results, _shard_stats(views, scanned, routed)

    def _execute_radius(self, query: RadiusQuery) -> tuple[list, QueryStats]:
        store = self.store  # bound once: a swap mid-query is invisible
        radius_sq = query.radius_sq
        rows = self._query_rows(query.query, store)
        if rows.shape[0] != 1:
            raise ValueError("radius queries take a single sketch")
        views = [v for v in store.snapshot() if v.live_size]
        if not views:
            return [], QueryStats()
        sq_rows = np.einsum("ij,ij->i", rows, rows)
        query_norms = np.sqrt(sq_rows)
        correction = self._correction(store)
        gamma = self._scan_gamma(store)
        routing = self._routing_for(store, views, query.routing)
        nprobe = None if query.routing is None else query.routing.nprobe
        routed = [False] * len(views)
        if nprobe is not None:
            probe = set(routing.probe_shards(rows, sq_rows, nprobe).tolist())
            scan_items = [(i, views[i]) for i in sorted(probe)]
            for i in range(len(views)):
                routed[i] = i not in probe
            route_bounds = None
        else:
            scan_items = list(enumerate(views))
            route_bounds = (
                routing.lower_bounds(rows, sq_rows, query_norms, correction, gamma)
                if routing is not None
                else None
            )
        prefilter = self.policy.prefilter

        def scan(item):
            i, view = item
            # against a fixed radius the centroid-ball bound is usable
            # immediately — no running best to warm up first
            if route_bounds is not None and route_bounds[0, i] > radius_sq:
                routed[i] = True
                return None
            if prefilter:
                bound = _shard_lower_bounds(
                    view, sq_rows, query_norms, correction, gamma
                )
                if bound[0] > radius_sq:
                    return None
            block = estimators.cross_sq_distances_from_parts(
                rows, sq_rows, view.values, view.sq_norms, correction
            )[0]
            if view.dead is not None:
                live = view.live_local()
                block = block[live]
                hits = np.flatnonzero(block <= radius_sq)
                return live[hits] + view.start, block[hits]
            hits = np.flatnonzero(block <= radius_sq)
            return hits + view.start, block[hits]

        per_shard = self._run_ordered(scan, scan_items)
        scanned = [False] * len(views)
        for (i, _), result in zip(scan_items, per_shard):
            scanned[i] = result is not None
        stats = _shard_stats(views, scanned, routed)
        hits = [r for r in per_shard if r is not None]
        if not hits:
            return [], stats
        idx = np.concatenate([r[0] for r in hits])
        est = np.concatenate([r[1] for r in hits])
        order = np.lexsort((idx, est))
        payload = [
            (
                store.label(int(idx[i])),
                estimators.clamp_sq_estimates(float(est[i])),
            )
            for i in order
        ]
        return payload, stats

    def _execute_cross(self, query: CrossQuery) -> tuple[np.ndarray, QueryStats]:
        store = self.store  # bound once: a swap mid-query is invisible
        rows = self._query_rows(query.queries, store)
        views = [v for v in store.snapshot() if v.live_size]
        sq_rows = np.einsum("ij,ij->i", rows, rows)
        correction = self._correction(store)
        # columns cover live rows only, in store order — the exact matrix
        # a compacted (tombstone-free) store would serve
        offsets = np.concatenate(
            ([0], np.cumsum([view.live_size for view in views]))
        ).astype(np.intp)
        out = np.empty((rows.shape[0], int(offsets[-1])))

        def scan(item):
            view, offset = item
            block = estimators.cross_sq_distances_from_parts(
                rows, sq_rows, view.values, view.sq_norms, correction
            )
            if view.dead is not None:
                block = block[:, view.live_local()]
            out[:, offset : offset + view.live_size] = block

        self._run_ordered(scan, list(zip(views, offsets)))
        return out, _shard_stats(views, [True] * len(views))

    def _execute_pairwise(self, query: PairwiseQuery) -> tuple[np.ndarray, QueryStats]:
        store = self.store  # bound once: a swap mid-query is invisible
        if store.metadata is None:
            raise ValueError("the index is empty")
        views = [v for v in store.snapshot() if v.live_size]
        # indices address the *live* row sequence — the numbering a
        # compacted store would have, so answers survive maintenance
        n = sum(view.live_size for view in views)
        indices = np.asarray(query.indices, dtype=np.int64)
        if indices.size and (indices.min() < -n or indices.max() >= n):
            raise IndexError(f"indices out of range for store of {n} rows")
        if indices.size:
            indices = indices % n
        bounds = np.cumsum([0] + [view.live_size for view in views])
        shard_ids = np.searchsorted(bounds, indices, side="right") - 1
        local = indices - bounds[shard_ids]
        gathered = np.empty((indices.size, store.metadata.output_dim))
        touched = np.unique(shard_ids)
        for shard in touched:
            view = views[int(shard)]
            mask = shard_ids == shard
            rows = local[mask]
            if view.dead is not None:
                rows = view.live_local()[rows]
            gathered[mask] = view.values[rows]
        subset = dataclasses.replace(store.metadata, values=gathered, labels=())
        # shards the gather never touches count as pruned (skipped without
        # a read — on an mmap store their files stay cold), preserving the
        # visited + pruned == snapshot-shards invariant of QueryStats
        stats = QueryStats(
            shards_visited=int(touched.size),
            shards_pruned=len(views) - int(touched.size),
            rows_scanned=int(np.unique(indices).size),
            rows_total=n,
        )
        return estimators.pairwise_sq_distances(subset), stats

    def _execute_norms(self, query: NormsQuery) -> tuple[np.ndarray, QueryStats]:
        store = self.store  # bound once: a swap mid-query is invisible
        meta = store.metadata
        if meta is None:
            raise ValueError("the index is empty")
        views = [v for v in store.snapshot() if v.live_size]
        correction = estimators.sq_norm_correction(meta)
        if not views:
            return np.empty(0), QueryStats()
        norms = (
            np.concatenate(
                [
                    view.sq_norms
                    if view.dead is None
                    else view.sq_norms[view.live_local()]
                    for view in views
                ]
            )
            - correction
        )
        return norms, _shard_stats(views, [True] * len(views))

    # -- deprecated method-per-query shims -----------------------------------

    def top_k(self, query, k: int = 1) -> list[tuple[object, float]]:
        """Deprecated: ``execute(TopKQuery(queries=query, k=k)).payload[0]``."""
        _deprecated("top_k", "TopKQuery")
        return self.execute(TopKQuery(queries=query, k=k)).payload[0]

    def top_k_batch(self, queries, k: int = 1) -> list[list[tuple[object, float]]]:
        """Deprecated: ``execute(TopKQuery(queries=queries, k=k)).payload``."""
        _deprecated("top_k_batch", "TopKQuery")
        return self.execute(TopKQuery(queries=queries, k=k)).payload

    def radius(self, query, radius_sq: float) -> list[tuple[object, float]]:
        """Deprecated: ``execute(RadiusQuery(query, radius_sq)).payload``."""
        _deprecated("radius", "RadiusQuery")
        return self.execute(RadiusQuery(query=query, radius_sq=radius_sq)).payload

    def cross(self, queries) -> np.ndarray:
        """Deprecated: ``execute(CrossQuery(queries)).payload``."""
        _deprecated("cross", "CrossQuery")
        return self.execute(CrossQuery(queries=queries)).payload

    def pairwise_submatrix(self, indices) -> np.ndarray:
        """Deprecated: ``execute(PairwiseQuery(indices)).payload``."""
        _deprecated("pairwise_submatrix", "PairwiseQuery")
        return self.execute(PairwiseQuery(indices=tuple(indices))).payload


DistanceService._HANDLERS = {
    TopKQuery: "_execute_top_k",
    RadiusQuery: "_execute_radius",
    CrossQuery: "_execute_cross",
    PairwiseQuery: "_execute_pairwise",
    NormsQuery: "_execute_norms",
}
