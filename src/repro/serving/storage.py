"""Storage specifications for quantised shard values.

The paper's whole trade is *accuracy for a private, compact
representation* of Euclidean geometry; :class:`StorageSpec` offers the
same dial at the storage layer.  A :class:`~repro.serving.store.ShardedSketchStore`
holds every shard's rows in one of four on-disk/in-memory element types:

===========  ==================  ===========  =================================
spec         storage dtype       scan dtype   per-coordinate rounding error
===========  ==================  ===========  =================================
``"f8"``     little-endian f64   float64      none (the full-precision path)
``"f4"``     little-endian f32   float32      ``|v| * 2**-24`` (half ulp)
``"f2"``     little-endian f16   float32      ``|v| * 2**-11`` (half ulp)
``"int8"``   int8 codes + scale  float32      ``step / 2``, per-shard ``step``
===========  ==================  ===========  =================================

The *scan dtype* is what queries actually see: :attr:`ShardView.values`
decodes storage to it on scan (``f4`` needs no decode at all — its
stored bytes are served zero-copy, memory-mapped included), and the
distance kernel in :func:`repro.core.estimators.cross_sq_distances_from_parts`
runs a native float32 GEMM over float32 scan values while accumulating
the norm and correction arithmetic in float64.

``int8`` is scalar quantisation with one scale per shard: codes are
``round(value / step)`` clipped to ``[-127, 127]``, decoded as
``float32(code) * step``.  The step is fixed by the first rows a shard
admits; a later chunk whose magnitude would clip **seals the shard**
instead of rescaling it (published rows are immutable — the store's
snapshot contract survives quantisation), and the chunk lands in a
fresh shard with its own step.  Decoding is deterministic, so a
quantised store round-trips save/load/mmap bit-identically.

The documented error envelope on squared-distance estimates — rounding
on top of the paper's sketch variance — lives in
:mod:`repro.theory.quantisation` and is asserted by the property suite.

``REPRO_STORE_DTYPE`` selects the default spec for newly constructed
stores (the same strict-parsing contract as the PR-4 serving env vars:
garbage fails loudly at construction, never silently falls back).
Loading a saved store always uses the storage recorded in its manifest,
not the environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

_STORAGE_ENV = "REPRO_STORE_DTYPE"

#: int8 codes span [-127, 127]; -128 is unused so the code space is
#: symmetric and ``decode(encode(-x)) == -decode(encode(x))``.
INT8_CODE_MAX = 127


@dataclass(frozen=True)
class StorageSpec:
    """How a store lays out shard values in memory and on disk.

    ``dtype`` is the storage element type (little-endian on disk),
    ``scan_dtype`` what queries scan, and ``quantised`` marks the
    scalar-quantised int8 variant that carries a per-shard scale.
    """

    name: str
    dtype: np.dtype
    scan_dtype: np.dtype
    quantised: bool = False

    @property
    def itemsize(self) -> int:
        """Bytes per stored coordinate (8 / 4 / 2 / 1)."""
        return self.dtype.itemsize

    def __repr__(self) -> str:
        return f"StorageSpec({self.name!r})"

    # -- encode / decode -----------------------------------------------------

    def encode(self, rows: np.ndarray, scale: float | None = None) -> np.ndarray:
        """Float64 rows as this spec's storage array (float casts round)."""
        if not self.quantised:
            encoded = np.asarray(rows, dtype=self.dtype)
            if self.name == "f2":
                # float16 tops out at ~6.5e4: a finite value that casts
                # to inf would silently poison norms, prefilter bounds
                # and every distance involving the row
                overflowed = np.isinf(encoded) & np.isfinite(np.asarray(rows))
                if np.any(overflowed):
                    raise ValueError(
                        "values exceed the f2 range (~6.5e4) and would "
                        "overflow to inf; use f4 or f8 storage"
                    )
            return encoded
        if scale is None:
            raise ValueError("int8 encoding needs the shard's scale")
        rows = np.asarray(rows, dtype=np.float64)
        if rows.size and not np.isfinite(rows).all():
            # clip() would silently turn inf/nan into legal-looking codes
            raise ValueError("int8 storage requires finite sketch values")
        codes = np.rint(rows / scale)
        return np.clip(codes, -INT8_CODE_MAX, INT8_CODE_MAX).astype(self.dtype)

    def decode(self, stored: np.ndarray, scale: float | None = None) -> np.ndarray:
        """Storage array as scan-dtype rows.

        ``f8``/``f4`` return ``stored`` unchanged (zero copy — a memory
        map stays a lazy memory map); ``f2`` widens to float32; ``int8``
        is ``float32(code) * scale``.  Deterministic: the same stored
        bytes always decode to the same scan values, which is what makes
        quantised save/load/mmap round trips bit-identical.
        """
        if self.name in ("f8", "f4"):
            return stored
        if not self.quantised:
            return stored.astype(self.scan_dtype)
        if scale is None:
            raise ValueError("int8 decoding needs the shard's scale")
        return stored.astype(self.scan_dtype) * scale

    def roundtrip(self, rows: np.ndarray) -> np.ndarray:
        """``decode(encode(rows))`` for the float specs (test helper).

        ``int8`` has no position-free round trip — its scale depends on
        which shard the rows land in — so it is rejected here.
        """
        if self.quantised:
            raise ValueError(
                "int8 storage quantises with a per-shard scale; there is no "
                "store-independent round trip"
            )
        return self.decode(self.encode(rows))

    @staticmethod
    def int8_step(max_abs: float) -> float:
        """The quantisation step a shard adopts for rows peaking at ``max_abs``."""
        return max_abs / INT8_CODE_MAX if max_abs > 0.0 else 1.0

    # -- construction --------------------------------------------------------

    @classmethod
    def parse(cls, value) -> "StorageSpec":
        """A :class:`StorageSpec` from a spec instance or its name."""
        if isinstance(value, cls):
            return value
        spec = STORAGE_SPECS.get(value)
        if spec is None:
            raise ValueError(
                f"unknown storage spec {value!r}: expected one of "
                f"{sorted(STORAGE_SPECS)}"
            )
        return spec

    @classmethod
    def from_env(cls) -> "StorageSpec":
        """The default spec, overridable via ``REPRO_STORE_DTYPE``.

        Unset or empty means ``f8`` (the full-precision default).  Any
        other value must name a spec exactly; garbage raises
        ``ValueError`` naming the variable, the offending value and the
        accepted forms — a typo in a deployment manifest should fail
        loudly at store construction, not silently serve full precision.
        """
        raw = os.environ.get(_STORAGE_ENV, "").strip()
        if not raw:
            return STORAGE_SPECS["f8"]
        try:
            return cls.parse(raw)
        except ValueError:
            raise ValueError(
                f"{_STORAGE_ENV}={raw!r} is not a valid storage spec: expected "
                f"one of {sorted(STORAGE_SPECS)} (unset it for f8)"
            ) from None


#: The four supported specs, by name.  Storage dtypes are pinned
#: little-endian so stores move between hosts of any byte order.
STORAGE_SPECS = {
    "f8": StorageSpec("f8", np.dtype("<f8"), np.dtype(np.float64)),
    "f4": StorageSpec("f4", np.dtype("<f4"), np.dtype(np.float32)),
    "f2": StorageSpec("f2", np.dtype("<f2"), np.dtype(np.float32)),
    "int8": StorageSpec("int8", np.dtype("i1"), np.dtype(np.float32), quantised=True),
}
