"""k-wise independent polynomial hash families.

Section 6.1 of the paper defines the SJLT through hash functions
``h_1..h_s : [d] -> [k/s]`` and sign functions ``phi_1..phi_s : [d] ->
{-1, +1}`` drawn from ``O(log(1/beta))``-wise independent families.  We
implement the textbook construction: a uniformly random polynomial of
degree ``t - 1`` over the field ``GF(p)`` with ``p = 2^31 - 1`` is a
``t``-wise independent function ``[p] -> [p]``; reducing modulo the range
size gives the bucket, the low bit gives the sign.

The Mersenne prime ``2^31 - 1`` is chosen so Horner evaluation stays
exact in ``uint64``: products of two residues are below ``2^62``.
Range reduction by ``mod m`` introduces a bias of at most ``m / p``
(< 1e-6 for any realistic sketch width), which is far below the 4-wise
moment accuracy the SJLT analysis needs.
"""

from __future__ import annotations

import numpy as np

from repro.hashing import prg

#: The Mersenne prime 2^31 - 1 used as the hash field size.
MERSENNE_PRIME_31: int = (1 << 31) - 1

_P = np.uint64(MERSENNE_PRIME_31)


class KWiseHash:
    """A ``t``-wise independent hash function ``[p] -> [range_size]``.

    Parameters
    ----------
    independence:
        The independence parameter ``t`` (the polynomial has ``t``
        uniform coefficients).  ``t = 2`` gives universal hashing;
        the SJLT uses ``t = O(log(1/beta))``.
    range_size:
        Size ``m`` of the output range ``{0, ..., m-1}``.
    rng:
        Source of randomness for the coefficients (or an int seed).
    """

    __slots__ = ("independence", "range_size", "_coefficients")

    def __init__(self, independence: int, range_size: int, rng) -> None:
        if independence < 1:
            raise ValueError(f"independence must be >= 1, got {independence}")
        if not 1 <= range_size <= MERSENNE_PRIME_31:
            raise ValueError(
                f"range_size must lie in [1, {MERSENNE_PRIME_31}], got {range_size}"
            )
        generator = prg.as_generator(rng)
        coefficients = generator.integers(
            0, MERSENNE_PRIME_31, size=independence, dtype=np.int64
        )
        self.independence = int(independence)
        self.range_size = int(range_size)
        self._coefficients = coefficients.astype(np.uint64)

    def __call__(self, keys) -> np.ndarray:
        """Hash integer ``keys`` (scalar or array) into ``[0, range_size)``."""
        arr = np.asarray(keys)
        if arr.dtype.kind not in "iu":
            raise TypeError(f"keys must be integers, got dtype {arr.dtype}")
        if arr.size and (arr.min() < 0):
            raise ValueError("keys must be non-negative")
        values = arr.astype(np.uint64) % _P
        acc = np.full(values.shape, self._coefficients[0], dtype=np.uint64)
        for coefficient in self._coefficients[1:]:
            acc = (acc * values + coefficient) % _P
        result = (acc % np.uint64(self.range_size)).astype(np.int64)
        if np.isscalar(keys) or arr.ndim == 0:
            return int(result)
        return result


class SignHash:
    """A ``t``-wise independent sign function ``[p] -> {-1, +1}``."""

    __slots__ = ("_hash",)

    def __init__(self, independence: int, rng) -> None:
        self._hash = KWiseHash(independence, 2, rng)

    @property
    def independence(self) -> int:
        return self._hash.independence

    def __call__(self, keys) -> np.ndarray:
        bits = self._hash(keys)
        if isinstance(bits, int):
            return 1 - 2 * bits
        return (1 - 2 * bits).astype(np.int64)


def hash_family(count: int, independence: int, range_size: int, rng) -> list[KWiseHash]:
    """Create ``count`` independent :class:`KWiseHash` functions."""
    generator = prg.as_generator(rng)
    return [KWiseHash(independence, range_size, generator) for _ in range(count)]


def sign_family(count: int, independence: int, rng) -> list[SignHash]:
    """Create ``count`` independent :class:`SignHash` functions."""
    generator = prg.as_generator(rng)
    return [SignHash(independence, generator) for _ in range(count)]
