"""Hashing and seeded-randomness substrate.

The SJLT of Kane & Nelson requires ``O(log(1/beta))``-wise independent
hash families (Section 6.1 of the paper); :mod:`repro.hashing.kwise`
implements polynomial hashing over a Mersenne prime.  The distributed
setting requires a *public* transform seed shared by all parties and
*secret* per-party noise seeds; :mod:`repro.hashing.prg` provides the
deterministic seed-derivation utilities both sides rely on.
"""

from repro.hashing.kwise import (
    MERSENNE_PRIME_31,
    KWiseHash,
    SignHash,
    hash_family,
    sign_family,
)
from repro.hashing.prg import child_seed, derive_rng, fresh_seed

__all__ = [
    "MERSENNE_PRIME_31",
    "KWiseHash",
    "SignHash",
    "child_seed",
    "derive_rng",
    "fresh_seed",
    "hash_family",
    "sign_family",
]
