"""Deterministic seed derivation for the distributed sketching setting.

All parties must build the *same* random projection from a public seed
(Section 2 of the paper: "All parties must use the same randomized matrix
S"), while each party's noise must come from its own secret seed.  We
derive child generators from ``(seed, *context)`` tuples via SHA-256 so
that the same context always yields the same stream, independent of
call order, platform and numpy version.
"""

from __future__ import annotations

import hashlib
import secrets

import numpy as np

#: Number of 32-bit words of entropy fed to each child ``SeedSequence``.
_ENTROPY_WORDS = 8


def _context_entropy(seed: int, context: tuple) -> list[int]:
    """Hash ``(seed, context)`` into a list of 32-bit entropy words."""
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode("utf-8"))
    for item in context:
        digest.update(b"\x1f")  # unit separator: ("ab",) != ("a","b")
        digest.update(str(item).encode("utf-8"))
    raw = digest.digest()
    words = []
    for i in range(_ENTROPY_WORDS):
        words.append(int.from_bytes(raw[4 * i : 4 * i + 4], "little"))
    return words


def derive_rng(seed: int, *context) -> np.random.Generator:
    """Return a ``numpy`` Generator determined by ``seed`` and ``context``.

    Examples
    --------
    >>> rng_a = derive_rng(7, "transform")
    >>> rng_b = derive_rng(7, "transform")
    >>> bool((rng_a.integers(0, 100, 5) == rng_b.integers(0, 100, 5)).all())
    True
    """
    entropy = _context_entropy(seed, context)
    return np.random.Generator(np.random.Philox(np.random.SeedSequence(entropy)))


def child_seed(seed: int, *context) -> int:
    """Derive a deterministic 63-bit child seed from ``seed`` and ``context``."""
    entropy = _context_entropy(seed, context)
    value = 0
    for word in entropy[:2]:
        value = (value << 32) | word
    return value & ((1 << 63) - 1)


def fresh_seed() -> int:
    """Return a cryptographically fresh 63-bit seed.

    Used for *secret* noise seeds; never use this for the shared public
    transform (parties would disagree on the projection).
    """
    return secrets.randbits(63)


def as_generator(rng_or_seed) -> np.random.Generator:
    """Coerce ``rng_or_seed`` (Generator, int seed, or None) to a Generator.

    ``None`` draws a fresh secret seed — appropriate for noise, not for
    the public transform.
    """
    if rng_or_seed is None:
        return derive_rng(fresh_seed(), "fresh")
    if isinstance(rng_or_seed, np.random.Generator):
        return rng_or_seed
    return derive_rng(int(rng_or_seed), "direct")
